"""Fleet coordination — sharding independent work cells across many workers.

The :class:`~repro.execution.engine.EvaluationEngine` parallelises *within*
one process and :class:`~repro.execution.jobs.JobQueue` runs background work
on one host's threads; neither can spread a performance table over a worker
fleet.  :class:`WorkCoordinator` closes that gap without introducing any new
wire protocol: the shared :class:`~repro.execution.store.ResultStore` (over
its sqlite or HTTP backend) *is* the coordination medium.

Protocol
--------
Every worker in the fleet runs the same call —
``coordinator.run(context, cells, objective)`` — over the same cell list and
a store pointing at the same backend.  Cells are keyed by
``fingerprint_key(config_fingerprint(cell))``, the exact key the engine uses,
so coordinated runs, serial engine runs and warm-started resumes all share
one knowledge pool.

* **Partitioned claims.**  Worker *i* of *n* owns cells ``i, i+n, i+2n, …``
  and processes them first, so an uncontended fleet never collides.  Before
  executing a cell the worker writes a *lease* — a put into the sidecar
  context ``<context>#claims`` whose score is the lease's expiry timestamp —
  and skips any cell whose lease is still live.
* **Work stealing.**  A worker that exhausts its own partition moves on to
  other workers' pending cells, taking any whose lease is absent or expired.
  A crashed worker's leases expire, so its unfinished cells are requeued
  automatically (crash retry); a slow worker keeps its lease by finishing
  within ``lease_seconds`` (long cells can simply use a longer lease).
* **At-least-once execution, exactly-once knowledge.**  Two workers racing
  the same lease may both execute a cell; both then issue the same
  idempotent ``put`` (objectives are seeded per cell, so scores agree) and
  the store keeps one record.  Correctness never depends on the lease —
  leases only avoid duplicated *effort*.
* **Resumability.**  Finished cells live in the main context, so a rerun —
  or a worker joining late — skips them on its first refresh.  Killing the
  whole fleet and restarting resumes from the last recorded cell.

Crashing objectives score ``crash_score`` (recorded, like the engine's crash
accounting) so one bad cell cannot wedge the fleet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .. import obs
from .cache import config_fingerprint
from .engine import timed_call
from .store import ResultStore, fingerprint_key

__all__ = ["CoordinatorStats", "WorkCoordinator", "claims_context"]


def claims_context(context: str) -> str:
    """Sidecar store context holding the lease claims for ``context``."""
    return f"{context}#claims"


@dataclass
class CoordinatorStats:
    """Counters a :class:`WorkCoordinator` accumulates across its lifetime."""

    n_cells_seen: int = 0  # cells presented across run() calls
    n_executed: int = 0  # cells this worker actually ran
    n_stolen: int = 0  # executed cells outside this worker's partition
    n_resumed: int = 0  # cells already finished before this run started
    n_crashes: int = 0  # executed cells whose objective raised
    n_claim_skips: int = 0  # cells skipped because another lease was live
    n_rounds: int = 0
    n_stall_waits: int = 0  # polling naps while others held every pending cell
    objective_time: float = 0.0
    wall_time: float = 0.0

    def as_dict(self) -> dict:
        return {
            "n_cells_seen": self.n_cells_seen,
            "n_executed": self.n_executed,
            "n_stolen": self.n_stolen,
            "n_resumed": self.n_resumed,
            "n_crashes": self.n_crashes,
            "n_claim_skips": self.n_claim_skips,
            "n_rounds": self.n_rounds,
            "n_stall_waits": self.n_stall_waits,
            "objective_time": round(self.objective_time, 4),
            "wall_time": round(self.wall_time, 4),
        }


class WorkCoordinator:
    """One fleet member's view of a shared cell-evaluation run.

    Parameters
    ----------
    store:
        The shared knowledge store.  For a multi-process fleet this must sit
        on a multi-writer backend (``sqlite`` or an HTTP store server); the
        JSONL backend is safe for a fleet of threads sharing one instance.
    worker_index / n_workers:
        This worker's slot in the fleet; cell ``j`` belongs to the worker
        with ``j % n_workers == worker_index``.  Partitioning is advisory —
        any worker may finish any cell — so a fleet keeps working even when
        some members never show up.
    lease_seconds:
        How long a claimed cell is protected from stealing.  Make it
        comfortably longer than one cell's evaluation; an expired lease is
        treated as a crashed worker and the cell is requeued.
    poll_interval / timeout:
        When every pending cell is leased elsewhere, the worker naps
        ``poll_interval`` seconds between refreshes.  ``timeout`` bounds one
        ``run`` call end to end (``None`` waits indefinitely; expiry raises
        ``TimeoutError`` — by then another worker holds the missing cells).
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        worker_index: int = 0,
        n_workers: int = 1,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.05,
        timeout: float | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0 <= worker_index < n_workers:
            raise ValueError(
                f"worker_index must be in [0, {n_workers}), got {worker_index}"
            )
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        self.store = store
        self.worker_index = int(worker_index)
        self.n_workers = int(n_workers)
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.timeout = timeout
        self.stats = CoordinatorStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkCoordinator(worker={self.worker_index}/{self.n_workers}, "
            f"lease={self.lease_seconds}s)"
        )

    # -- keys --------------------------------------------------------------------------
    @staticmethod
    def cell_key(cell: dict[str, Any]) -> str:
        """The store key for one cell — identical to the engine's fingerprint."""
        return fingerprint_key(config_fingerprint(cell))

    # -- the fleet protocol ------------------------------------------------------------
    def run(
        self,
        context: str,
        cells: Sequence[dict[str, Any]],
        objective: Callable[[dict[str, Any]], float],
        *,
        crash_score: float = 0.0,
    ) -> dict[str, float]:
        """Work the cell list until *every* cell has a recorded score.

        Returns ``{cell_key: score}`` covering all requested cells — whether
        this worker computed them, another fleet member did, or a previous
        run left them in the store.  Call this with identical ``cells`` (and
        a same-backend store) from every worker in the fleet.
        """
        t0 = time.monotonic()
        keys = [self.cell_key(cell) for cell in cells]
        if len(set(keys)) != len(keys):
            raise ValueError("cells must have distinct fingerprints")
        claims = claims_context(context)
        self.stats.n_cells_seen += len(cells)
        deadline = None if self.timeout is None else t0 + self.timeout
        worker = f"w{self.worker_index}"
        tr = obs.tracer()
        with tr.span(
            "coordinator.run",
            attrs={"worker": worker, "context": context, "n_cells": len(cells)},
        ) as run_span:
            result = self._run(
                context, cells, objective, crash_score, t0, keys, claims,
                deadline, worker, tr,
            )
            run_span.set_attribute("n_executed", self.stats.n_executed)
            run_span.set_attribute("n_stolen", self.stats.n_stolen)
            return result

    def _run(
        self,
        context: str,
        cells: Sequence[dict[str, Any]],
        objective: Callable[[dict[str, Any]], float],
        crash_score: float,
        t0: float,
        keys: list[str],
        claims: str,
        deadline: float | None,
        worker: str,
        tr: "obs.Tracer",
    ) -> dict[str, float]:

        # Own partition first (in order), then everyone else's — the steal
        # scan starts just past our slot so workers fan out over different
        # victims instead of stampeding cell 0.
        own = [j for j in range(len(cells)) if j % self.n_workers == self.worker_index]
        rest = [
            j
            for off in range(1, self.n_workers)
            for j in range(len(cells))
            if j % self.n_workers == (self.worker_index + off) % self.n_workers
        ]
        order = own + rest
        own_set = set(own)

        first_round = True
        while True:
            self.stats.n_rounds += 1
            self.store.refresh(context)
            self.store.refresh(claims)
            done = dict(self.store.items(context))
            pending = [j for j in order if keys[j] not in done]
            if first_round:
                self.stats.n_resumed += len(cells) - len(pending)
                if tr.enabled:
                    # Resumed cells are the fleet's cache hits: account for
                    # them so a report sees every trial's status.
                    resumed = set(keys) - {keys[j] for j in pending}
                    for key in sorted(resumed):
                        tr.emit(
                            "trial_finish",
                            worker=worker,
                            context=context,
                            key=key,
                            status="cached",
                            score=done.get(key),
                            cached=True,
                        )
                first_round = False
            if not pending:
                break
            progressed = False
            for j in pending:
                key = keys[j]
                if j not in own_set:
                    # Stealing a contended cell: the round-start result image
                    # is stale by now — re-read so a cell its owner already
                    # finished is skipped, not re-run.
                    self.store.refresh(context)
                # The claims image goes stale even for *own* cells: a fast
                # partner that emptied its partition steals from ours, and
                # its lease must be visible before we claim over it —
                # otherwise every stolen cell is silently run twice.
                self.store.refresh(claims)
                if self.store.get_key(context, key) is not None:
                    continue  # finished elsewhere since the refresh
                now = time.time()
                lease = self.store.get_key(claims, key)
                if lease is not None and now < lease:
                    self.stats.n_claim_skips += 1
                    continue  # live lease — its holder gets lease_seconds
                stolen = j not in own_set
                if tr.enabled and lease is not None:
                    # Dead lease: its holder crashed or stalled past expiry.
                    tr.emit("claim_expired", worker=worker, key=key)
                # Claim, then execute.  The put is advisory (last writer
                # wins); a lost race costs duplicate effort, never a wrong
                # record.
                self.store.put_key(claims, key, now + self.lease_seconds)
                if tr.enabled:
                    tr.emit("claim_lease", worker=worker, key=key, stolen=stolen)
                    if stolen:
                        tr.emit("claim_steal", worker=worker, key=key)
                with tr.span(
                    "coordinator.cell", attrs={"worker": worker, "key": key}
                ):
                    score, elapsed, error = timed_call(objective, cells[j])
                self.stats.n_executed += 1
                self.stats.objective_time += elapsed
                if stolen:
                    self.stats.n_stolen += 1
                if error is not None:
                    self.stats.n_crashes += 1
                    score = crash_score
                if tr.enabled:
                    if error is not None:
                        exc_class = (
                            error.partition("(")[0].rpartition(".")[2]
                            or "Exception"
                        )
                        tr.emit(
                            "error",
                            site="coordinator.cell",
                            exc_class=exc_class,
                            message=error[:200],
                        )
                        tr.emit(
                            "trial_finish",
                            worker=worker,
                            context=context,
                            key=key,
                            status="crashed",
                            exc_class=exc_class,
                            score=float(score),
                            elapsed=round(elapsed, 6),
                            cached=False,
                        )
                    else:
                        tr.emit(
                            "trial_finish",
                            worker=worker,
                            context=context,
                            key=key,
                            status="ok",
                            score=float(score),
                            elapsed=round(elapsed, 6),
                            cached=False,
                        )
                self.store.put_key(context, key, float(score), dict(cells[j]))
                progressed = True
            if progressed:
                continue
            # Every pending cell is leased by someone else: nap and re-check.
            self.stats.n_stall_waits += 1
            if deadline is not None and time.monotonic() > deadline:
                missing = [keys[j] for j in pending]
                raise TimeoutError(
                    f"coordinator timed out with {len(missing)} cells still "
                    f"pending in {context!r} (first: {missing[0]!r})"
                )
            time.sleep(self.poll_interval)

        self.stats.wall_time += time.monotonic() - t0
        self.store.refresh(context)
        done = dict(self.store.items(context))
        return {key: done[key] for key in keys}

    def scores_for(
        self, context: str, cells: Sequence[dict[str, Any]]
    ) -> dict[str, float]:
        """Fresh ``{cell_key: score}`` snapshot for already-finished cells."""
        self.store.refresh(context)
        done = dict(self.store.items(context))
        return {
            key: done[key]
            for key in (self.cell_key(cell) for cell in cells)
            if key in done
        }
