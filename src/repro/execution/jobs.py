"""Background job queue — async execution of long-running work.

The serving subsystem must keep answering ``recommend`` requests while
expensive work (UDR refinement runs, full ``fit_from_datasets`` pipelines —
all of which execute through the :class:`~repro.execution.engine.EvaluationEngine`
and persist into a :class:`~repro.execution.store.ResultStore`) happens in
the background.  :class:`JobQueue` is the generic half of that: named jobs
with an explicit ``queued → running → done/failed`` lifecycle, executed by a
pool of daemon worker threads, with crash containment (a job that raises
marks itself ``failed`` and the worker survives) and engine-style counters.

The queue is deliberately dependency-free (stdlib threads only) so it can be
reused anywhere in the codebase; the serving layer builds its fit/refine
semantics on top in :mod:`repro.service.jobs`.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from .. import obs

__all__ = ["JobRecord", "JobQueueStats", "JobQueue"]

_STATUSES = ("queued", "running", "done", "failed", "cancelled")


class _JobEvent(threading.Event):
    """Completion event that carries the final record snapshot.

    A concurrent ``submit`` may prune a finished job between a waiter's
    event fetch and its final table lookup; stashing the snapshot on the
    event at completion time lets :meth:`JobQueue.wait` return the job's
    last-known state instead of raising ``KeyError`` at the waiter.
    """

    def __init__(self) -> None:
        super().__init__()
        self.record: JobRecord | None = None


@dataclass
class JobRecord:
    """One unit of background work and its observable lifecycle."""

    job_id: str
    kind: str
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: Any = None
    detail: dict = field(default_factory=dict)

    @property
    def elapsed(self) -> float | None:
        """Wall-clock run time (``None`` until the job starts)."""
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.started_at

    def as_dict(self) -> dict:
        out = {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "detail": dict(self.detail),
        }
        # Results are included only when JSON-representable summaries; rich
        # objects stay reachable through JobQueue.get().result in-process.
        if isinstance(self.result, (dict, list, str, int, float, bool)) or self.result is None:
            out["result"] = self.result
        else:
            out["result"] = repr(self.result)
        return out


@dataclass
class JobQueueStats:
    """Counters a :class:`JobQueue` accumulates across its lifetime."""

    n_submitted: int = 0
    n_done: int = 0
    n_failed: int = 0
    n_cancelled: int = 0

    @property
    def n_finished(self) -> int:
        return self.n_done + self.n_failed + self.n_cancelled

    def as_dict(self) -> dict:
        return {
            "n_submitted": self.n_submitted,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_cancelled": self.n_cancelled,
        }


class JobQueue:
    """Thread-pool job runner with an inspectable job table.

    Parameters
    ----------
    n_workers:
        Number of daemon worker threads (each drains jobs FIFO).
    name:
        Prefix for worker thread names and job ids.
    max_finished_jobs:
        Finished (done/failed/cancelled) records kept for inspection; the
        oldest beyond this bound are pruned on submit so a long-lived
        serving process never accumulates an unbounded job table.
    """

    def __init__(
        self, n_workers: int = 1, name: str = "jobs", max_finished_jobs: int = 500
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.name = name
        self.max_finished_jobs = int(max_finished_jobs)
        self.stats = JobQueueStats()
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._functions: dict[str, Callable[[], Any]] = {}
        self._trace_headers: dict[str, str | None] = {}
        self._events: dict[str, _JobEvent] = {}
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._counter = itertools.count(1)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission -------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        fn: Callable[[], Any],
        detail: dict | None = None,
    ) -> str:
        """Queue ``fn`` for background execution; returns the job id.

        ``detail`` is free-form JSON-serialisable context echoed back by
        :meth:`get`/:meth:`jobs` (the HTTP layer surfaces it to clients).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is shut down")
            job_id = f"{self.name}-{next(self._counter):04d}"
            self._jobs[job_id] = JobRecord(
                job_id=job_id,
                kind=kind,
                submitted_at=time.time(),
                detail=dict(detail or {}),
            )
            self._functions[job_id] = fn
            # Jobs run on long-lived worker threads that never inherit the
            # submitter's context — carry the trace header alongside the fn.
            self._trace_headers[job_id] = obs.trace_header()
            self._events[job_id] = _JobEvent()
            self.stats.n_submitted += 1
            self._prune_finished()
        if obs.enabled():
            obs.emit("job_submitted", job_id=job_id, kind=kind, queue=self.name)
        self._queue.put(job_id)
        return job_id

    def _prune_finished(self) -> None:
        """Drop the oldest finished records beyond ``max_finished_jobs`` (lock held)."""
        finished = [
            job_id
            for job_id, record in self._jobs.items()  # insertion order = submission order
            if record.status in ("done", "failed", "cancelled")
        ]
        for job_id in finished[: max(0, len(finished) - self.max_finished_jobs)]:
            del self._jobs[job_id]
            self._events.pop(job_id, None)

    # -- inspection -------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """Snapshot of one job (a copy — safe to inspect without locking)."""
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            record = self._jobs[job_id]
            return replace(record, detail=dict(record.detail))

    def counts(self) -> dict[str, int]:
        """Live tally of jobs by status (keys for all known statuses)."""
        with self._lock:
            out = {status: 0 for status in _STATUSES}
            for record in self._jobs.values():
                out[record.status] = out.get(record.status, 0) + 1
            return out

    @property
    def depth(self) -> int:
        """Unfinished work: jobs queued or running right now.

        This is the backpressure signal for admission control — a serving
        front end can refuse new fit submissions (or advertise the backlog
        over /metrics) when the depth says the workers are saturated.
        """
        counts = self.counts()
        return counts["queued"] + counts["running"]

    def jobs(self, status: str | None = None) -> list[JobRecord]:
        """Snapshots of all jobs, newest first, optionally filtered by status."""
        if status is not None and status not in _STATUSES:
            raise ValueError(f"unknown status {status!r}; known: {_STATUSES}")
        with self._lock:
            records = [
                replace(record, detail=dict(record.detail))
                for record in self._jobs.values()
                if status is None or record.status == status
            ]
        return sorted(records, key=lambda r: r.submitted_at, reverse=True)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job finishes (or ``timeout`` elapses); returns a snapshot."""
        with self._lock:
            if job_id not in self._events:
                raise KeyError(f"unknown job {job_id!r}")
            event = self._events[job_id]
        event.wait(timeout)
        try:
            return self.get(job_id)
        except KeyError:
            # A concurrent submit pruned the finished record while we were
            # waking up; the completion event carries the final snapshot.
            if event.record is not None:
                return replace(event.record, detail=dict(event.record.detail))
            raise

    # -- cancellation / shutdown --------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet; returns True on success."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(f"unknown job {job_id!r}")
            if record.status != "queued":
                return False
            record.status = "cancelled"
            record.finished_at = time.time()
            self._functions.pop(job_id, None)
            self._trace_headers.pop(job_id, None)
            self.stats.n_cancelled += 1
            self._finish(job_id, record)
            return True

    def shutdown(self, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Stop accepting jobs and (optionally) wait for workers to drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for worker in self._workers:
                worker.join(timeout)

    def _finish(self, job_id: str, record: JobRecord) -> None:
        """Stash the final snapshot on the event, then wake waiters (lock held)."""
        event = self._events.get(job_id)
        if event is not None:
            event.record = replace(record, detail=dict(record.detail))
            event.set()

    # -- worker loop -------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                record = self._jobs.get(job_id)
                fn = self._functions.pop(job_id, None)
                header = self._trace_headers.pop(job_id, None)
                if record is None or fn is None or record.status != "queued":
                    continue  # cancelled (or shut down) before starting
                record.status = "running"
                record.started_at = time.time()
            if obs.enabled():
                with obs.attach(obs.parse_header(header)):
                    self._run_job(job_id, record, fn)
            else:
                self._run_job(job_id, record, fn)

    def _run_job(self, job_id: str, record: JobRecord, fn: Callable[[], Any]) -> None:
        """Execute one claimed job under the submitter's trace context."""
        if obs.enabled():
            obs.emit("job_start", job_id=job_id, kind=record.kind, queue=self.name)
        with obs.span("job", attrs={"job_id": job_id, "kind": record.kind}):
            try:
                result = fn()
            except Exception as exc:  # noqa: BLE001 — crash containment is the contract
                obs.error_event("jobs.worker", exc)
                with self._lock:
                    record.status = "failed"
                    record.error = traceback.format_exc(limit=20)
                    record.finished_at = time.time()
                    self.stats.n_failed += 1
                    self._finish(job_id, record)
            else:
                with self._lock:
                    record.status = "done"
                    record.result = result
                    record.finished_at = time.time()
                    self.stats.n_done += 1
                    self._finish(job_id, record)
        if obs.enabled():
            obs.emit(
                "job_finish",
                job_id=job_id,
                kind=record.kind,
                queue=self.name,
                status=record.status,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobQueue(name={self.name!r}, jobs={len(self)}, workers={len(self._workers)})"
