"""Unified trial-execution subsystem.

Every configuration evaluation in the reproduction — HPO optimizers, the
online UDR, the offline corpus/performance layer and the CASH baselines —
runs through one :class:`EvaluationEngine`: a cached, optionally parallel,
budget-aware executor with crash accounting.  See :mod:`repro.execution.engine`
for the design notes.
"""

from .budget import Budget
from .cache import EvaluationCache, config_fingerprint
from .coordinator import CoordinatorStats, WorkCoordinator, claims_context
from .engine import EngineStats, EvalOutcome, EvaluationEngine, timed_call
from .folds import FoldPlan
from .jobs import JobQueue, JobQueueStats, JobRecord
from .objectives import cross_val_objective, estimator_engine, objective_context_suffix
from .store import ResultStore, StoreStats, fingerprint_key
from .store_backends import (
    HttpStoreBackend,
    JsonlBackend,
    ShardImage,
    SqliteBackend,
    StoreBackend,
)

__all__ = [
    "JobQueue",
    "JobQueueStats",
    "JobRecord",
    "Budget",
    "EvaluationCache",
    "config_fingerprint",
    "CoordinatorStats",
    "WorkCoordinator",
    "claims_context",
    "EngineStats",
    "EvalOutcome",
    "EvaluationEngine",
    "timed_call",
    "FoldPlan",
    "cross_val_objective",
    "estimator_engine",
    "objective_context_suffix",
    "ResultStore",
    "StoreStats",
    "fingerprint_key",
    "StoreBackend",
    "ShardImage",
    "JsonlBackend",
    "SqliteBackend",
    "HttpStoreBackend",
]
