"""Glue between the execution engine and the learner/dataset layers.

These helpers build the standard objective of the paper — k-fold
cross-validation score of an estimator on one dataset — with the folds
precomputed once (:class:`~repro.execution.folds.FoldPlan`) and wrap it in a
ready-to-use :class:`~repro.execution.engine.EvaluationEngine`.  The UDR, the
Auto-WEKA baselines and the performance-table builder all construct their
engines through this module, which is what makes their evaluations cacheable
and parallelisable with identical scores.

The objective is task-aware: classification (the default) scores stratified-CV
accuracy exactly as before, while ``task="regression"`` scores unstratified
k-fold R² (or RMSE/MAE, oriented so greater is better) — see
:mod:`repro.learners.metrics`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..datasets.task import resolve_task
from ..learners.metrics import Scorer, resolve_scorer
from . import dataplane
from .engine import EvaluationEngine
from .folds import FoldPlan
from .store import ResultStore

__all__ = [
    "CrossValObjective",
    "cross_val_objective",
    "estimator_engine",
    "objective_context_suffix",
]


def objective_context_suffix(task: str = "classification", metric: str | Scorer | None = None) -> str:
    """Store-context suffix identifying a non-default objective.

    Empty for the paper's default (classification accuracy), so every
    classification cache/store fingerprint is byte-identical to earlier
    releases; regression (or a non-default metric) appends its identity so a
    persistent store never mixes scores across objectives.
    """
    task = resolve_task(task).value
    if task == "classification" and metric is None:
        return ""
    scorer = resolve_scorer(metric, task)
    return f"-task{task}-metric{scorer.name}"


class CrossValObjective:
    """Objective ``f(config) = mean CV score of build(config)`` on ``(X, y)``.

    The fold plan is computed once at construction and shared by every
    configuration, so repeated evaluations skip the per-call re-splitting of
    the seed code while producing bit-identical scores.  Estimator
    *construction* errors propagate to the engine's crash accounting;
    per-fold fit/predict errors score the metric's worst value on that fold
    (0.0 for accuracy — the Auto-WEKA convention — as before).

    The objective is a *class* (not a closure) so the engine's process
    backend can pickle it, and it participates in the engine's zero-copy
    data plane: ``data_key`` content-fingerprints the dataset payload, and
    with ``detach_payload`` set (by the engine, once it has seeded its pool
    via :func:`repro.execution.dataplane.seed_worker`) pickling drops the
    matrices — per-trial submits carry only the config machinery, and the
    worker re-binds the arrays from its process-local registry.
    """

    def __init__(
        self,
        build: Callable[[dict[str, Any]], Any],
        X,
        y,
        cv: int = 5,
        random_state: int | None = None,
        task: str = "classification",
        metric: str | Scorer | None = None,
    ) -> None:
        X = np.asarray(X)
        if X.dtype != object:
            X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self.build = build
        self.task = resolve_task(task).value
        if self.task == "classification" and metric is None:
            # The paper's default objective, untouched: stratified folds +
            # accuracy with 0.0 crash folds, bit-identical to earlier releases.
            self.scorer: Scorer | None = None
            self.fold_plan = FoldPlan.stratified(y, cv=cv, random_state=random_state)
        else:
            self.scorer = resolve_scorer(metric, self.task)
            self.fold_plan = FoldPlan.for_task(
                y, task=self.task, cv=cv, random_state=random_state
            )
        self._X = X
        self._y = y
        self.data_key = dataplane.fingerprint({"X": X, "y": y})
        #: Set by the engine after seeding its worker pool with the payload;
        #: from then on ``pickle`` ships this objective without the matrices.
        self.detach_payload = False
        #: Per-unpickled-copy flag: True once this copy re-bound its arrays
        #: from the worker-local registry (read back by ``plane_timed_call``).
        self.plane_attached = False

    def payload(self) -> dict[str, np.ndarray]:
        """The dataset arrays the data plane ships once per worker."""
        return {"X": self._X, "y": self._y}

    def _bind_payload(self) -> None:
        if self._X is not None:
            return
        block = dataplane.local_block(self.data_key)
        if block is None:
            raise RuntimeError(
                f"data-plane payload {self.data_key[:12]}… is not registered in "
                "this process; the objective was pickled without its matrices "
                "but the worker pool was not seeded with them"
            )
        self._X = block["X"]
        self._y = block["y"]
        self.plane_attached = True

    def __call__(self, config: dict[str, Any]) -> float:
        self._bind_payload()
        if self.scorer is None:
            return self.fold_plan.score(self.build(config), self._X, self._y)
        return self.fold_plan.score(
            self.build(config),
            self._X,
            self._y,
            scoring=self.scorer,
            error_score=self.scorer.error_score,
        )

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        if state.get("detach_payload"):
            state["_X"] = None
            state["_y"] = None
        state["plane_attached"] = False
        return state


def cross_val_objective(
    build: Callable[[dict[str, Any]], Any],
    X,
    y,
    cv: int = 5,
    random_state: int | None = None,
    task: str = "classification",
    metric: str | Scorer | None = None,
) -> CrossValObjective:
    """Construct the standard CV objective (see :class:`CrossValObjective`).

    ``task="regression"`` switches to unstratified folds and the regression
    default metric (R²); ``metric`` picks any registered scorer by name.

    Raw object-dtype matrices (pipeline searches, where the configuration's
    own steps impute/encode per fold) are passed through as-is; float input
    keeps the historical coercion so bare-estimator scores are unchanged.
    """
    return CrossValObjective(
        build, X, y, cv=cv, random_state=random_state, task=task, metric=metric
    )


def estimator_engine(
    build: Callable[[dict[str, Any]], Any],
    X,
    y,
    *,
    cv: int = 5,
    random_state: int | None = None,
    cache: bool = True,
    n_workers: int = 1,
    backend: str = "thread",
    crash_score: float = float("-inf"),
    name: str = "cv-engine",
    store: ResultStore | None = None,
    store_context: str | None = None,
    warm_start: bool = False,
    task: str = "classification",
    metric: str | Scorer | None = None,
) -> EvaluationEngine:
    """An :class:`EvaluationEngine` over the standard CV objective.

    ``store``/``store_context``/``warm_start`` are forwarded to the engine;
    the context should fingerprint the dataset and CV protocol so a
    persistent store never mixes scores across objectives.  ``task`` and
    ``metric`` select the objective flavour (see :func:`cross_val_objective`);
    non-default flavours are folded into the store context automatically.
    """
    objective = cross_val_objective(
        build, X, y, cv=cv, random_state=random_state, task=task, metric=metric
    )
    suffix = objective_context_suffix(task, metric)
    if suffix and store_context is not None:
        store_context = f"{store_context}{suffix}"
    return EvaluationEngine(
        objective,
        cache=cache,
        n_workers=n_workers,
        backend=backend,
        crash_score=crash_score,
        name=name,
        store=store,
        store_context=store_context,
        warm_start=warm_start,
    )
