"""Glue between the execution engine and the learner/dataset layers.

These helpers build the standard objective of the paper — stratified k-fold
cross-validation accuracy of an estimator on one dataset — with the folds
precomputed once (:class:`~repro.execution.folds.FoldPlan`) and wrap it in a
ready-to-use :class:`~repro.execution.engine.EvaluationEngine`.  The UDR, the
Auto-WEKA baselines and the performance-table builder all construct their
engines through this module, which is what makes their evaluations cacheable
and parallelisable with identical scores.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .engine import EvaluationEngine
from .folds import FoldPlan
from .store import ResultStore

__all__ = ["cross_val_objective", "estimator_engine"]


def cross_val_objective(
    build: Callable[[dict[str, Any]], Any],
    X,
    y,
    cv: int = 5,
    random_state: int | None = None,
) -> Callable[[dict[str, Any]], float]:
    """Objective ``f(config) = mean CV accuracy of build(config)`` on ``(X, y)``.

    The fold plan is computed once here and shared by every configuration, so
    repeated evaluations skip the per-call re-splitting of the seed code while
    producing bit-identical scores.  Estimator *construction* errors propagate
    to the engine's crash accounting; per-fold fit/predict errors score 0.0 on
    that fold (the Auto-WEKA convention), as before.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    plan = FoldPlan.stratified(y, cv=cv, random_state=random_state)

    def objective(config: dict[str, Any]) -> float:
        return plan.score(build(config), X, y)

    objective.fold_plan = plan  # type: ignore[attr-defined] — introspection hook
    return objective


def estimator_engine(
    build: Callable[[dict[str, Any]], Any],
    X,
    y,
    *,
    cv: int = 5,
    random_state: int | None = None,
    cache: bool = True,
    n_workers: int = 1,
    backend: str = "thread",
    crash_score: float = float("-inf"),
    name: str = "cv-engine",
    store: ResultStore | None = None,
    store_context: str | None = None,
    warm_start: bool = False,
) -> EvaluationEngine:
    """An :class:`EvaluationEngine` over the standard CV objective.

    ``store``/``store_context``/``warm_start`` are forwarded to the engine;
    the context should fingerprint the dataset and CV protocol so a
    persistent store never mixes scores across objectives.
    """
    objective = cross_val_objective(build, X, y, cv=cv, random_state=random_state)
    return EvaluationEngine(
        objective,
        cache=cache,
        n_workers=n_workers,
        backend=backend,
        crash_score=crash_score,
        name=name,
        store=store,
        store_context=store_context,
        warm_start=warm_start,
    )
