"""Evaluation and wall-clock budgets for configuration search.

The paper's experiments bound every CASH run by a time limit (30 s and 5 min
in Table X) and the reproduction additionally supports deterministic
evaluation-count limits.  :class:`Budget` is the single budget object shared
by the HPO optimizers, the UDR, the corpus generator and the baselines; the
:class:`~repro.execution.engine.EvaluationEngine` records every evaluation
against it, so budget accounting lives in exactly one place.

The clock is *lazy*: it does not start at construction but at the first
:meth:`start` call (the engine and ``BaseOptimizer.optimize`` both issue one),
so ``OptimizationResult.elapsed`` never silently includes setup work done
between constructing a budget and actually searching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Budget"]


@dataclass
class Budget:
    """Evaluation / wall-clock budget shared by all optimizers.

    ``max_evaluations`` limits objective calls; ``time_limit`` (seconds) limits
    wall-clock time (the paper's experiments use 30 s and 5 min limits).
    Either may be ``None`` for "unlimited".
    """

    max_evaluations: int | None = None
    time_limit: float | None = None

    def __post_init__(self) -> None:
        self._start: float | None = None
        self._evaluations = 0

    def start(self) -> None:
        """Start the clock if it is not already running (idempotent).

        Evaluations recorded before ``start`` — e.g. the UDR's probe
        evaluations — are kept: they were real objective calls and must count
        against ``max_evaluations``.  Use :meth:`restart` for a full reset.
        """
        if self._start is None:
            self._start = time.monotonic()

    def restart(self) -> None:
        """Reset both the clock and the evaluation count (budget reuse)."""
        self._start = time.monotonic()
        self._evaluations = 0

    def record_evaluation(self) -> None:
        self.start()
        self._evaluations += 1

    @property
    def started(self) -> bool:
        return self._start is not None

    @property
    def evaluations(self) -> int:
        return self._evaluations

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start`; 0.0 while the clock has not started."""
        if self._start is None:
            return 0.0
        return time.monotonic() - self._start

    def remaining_evaluations(self) -> int | None:
        """Evaluations left under ``max_evaluations`` (``None`` = unlimited)."""
        if self.max_evaluations is None:
            return None
        return max(0, self.max_evaluations - self._evaluations)

    def remaining_time(self) -> float | None:
        """Seconds left under ``time_limit`` (``None`` = unlimited)."""
        if self.time_limit is None:
            return None
        return max(0.0, self.time_limit - self.elapsed)

    def exhausted(self) -> bool:
        if self.max_evaluations is not None and self._evaluations >= self.max_evaluations:
            return True
        if self.time_limit is not None and self.elapsed >= self.time_limit:
            return True
        return False
