"""Worker-local payload registry — the engine's zero-copy data plane.

The process backend historically pickled the whole objective — fold matrices
included — into every ``submit`` call, so a 100-trial batch shipped the same
dataset to the pool 100 times.  The data plane splits an objective into a
*light* part (config handling, fold plan, scorer) and a *payload* part (the
dataset arrays), and ships the payload to each worker exactly once:

* the parent computes a content :func:`fingerprint` of the payload arrays,
* the pool is created with :func:`seed_worker` as its initializer, which
  installs the payload in this module's process-global registry,
* per-trial submits pickle only the light objective (its ``__getstate__``
  drops the arrays), and the worker re-binds them from the registry by key.

The registry is keyed by content, so engines over the same dataset share one
block, and a stale worker can never silently compute against the wrong data —
a missing key raises instead of recomputing.  Workers die with their pool,
which bounds the registry's lifetime.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np

__all__ = ["fingerprint", "seed_worker", "local_block", "register", "registered_keys"]

#: Process-global payload registry: key -> dict of named arrays.  In the
#: parent it stays empty; in pool workers it is seeded by the initializer.
_LOCAL: dict[str, dict[str, np.ndarray]] = {}


def fingerprint(arrays: dict[str, np.ndarray]) -> str:
    """Content hash of a payload block (names, dtypes, shapes and bytes)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        if array.dtype == object:
            # Object matrices (raw pipeline inputs) hold python scalars whose
            # ``tobytes`` would hash pointers; pickle is content-stable.
            digest.update(pickle.dumps(array, protocol=4))
        else:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def register(key: str, arrays: dict[str, np.ndarray]) -> None:
    """Install one payload block in this process's registry."""
    _LOCAL[key] = arrays


def seed_worker(blocks: dict[str, dict[str, np.ndarray]]) -> None:
    """Pool initializer: install every payload block in the new worker.

    ``initargs`` are pickled once per spawned worker — this is the only time
    the engine ships dataset bytes across the process boundary.
    """
    _LOCAL.update(blocks)


def local_block(key: str) -> dict[str, np.ndarray] | None:
    """The payload block for ``key`` in this process, or ``None``."""
    return _LOCAL.get(key)


def registered_keys() -> list[str]:
    """Keys present in this process's registry (diagnostics/tests)."""
    return sorted(_LOCAL)
