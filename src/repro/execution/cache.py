"""Configuration fingerprinting and score memoization.

The search algorithms of the paper re-visit configurations constantly: GA
elites are copied unchanged into every next generation, BO re-proposes the
incumbent's neighbourhood, and the UDR's cost probe evaluates the default
configuration that GA/BO then evaluate again as their anchor.  Each of those
repeats a full k-fold cross-validation run.  :class:`EvaluationCache` keys
scores by a canonical fingerprint of the configuration dict so every repeat
is a dictionary lookup instead.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

__all__ = ["config_fingerprint", "EvaluationCache"]


def _normalize(value: Any) -> Any:
    """Reduce a config value to a canonical, hashable form."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly, so distinct values never collide.
        return repr(value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _normalize(v)) for k, v in value.items()))
    return repr(value)


def config_fingerprint(config: dict[str, Any]) -> tuple:
    """Canonical hashable fingerprint of a configuration dict.

    Key order does not matter; numerically identical values produce identical
    fingerprints regardless of numpy/python scalar types.
    """
    return tuple(sorted((str(key), _normalize(value)) for key, value in config.items()))


class EvaluationCache:
    """Thread-safe fingerprint → score memo with hit/miss counters."""

    def __init__(self) -> None:
        self._scores: dict[tuple, float] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, fingerprint: tuple) -> bool:
        return fingerprint in self._scores

    def lookup(self, fingerprint: tuple) -> float | None:
        """Return the cached score (counting a hit) or ``None`` (a miss)."""
        with self._lock:
            if fingerprint in self._scores:
                self.hits += 1
                return self._scores[fingerprint]
            self.misses += 1
            return None

    def store(self, fingerprint: tuple, score: float) -> None:
        with self._lock:
            self._scores[fingerprint] = score

    def peek(self, fingerprint: tuple) -> float | None:
        """Lookup without touching the hit/miss counters."""
        return self._scores.get(fingerprint)

    def clear(self) -> None:
        with self._lock:
            self._scores.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
