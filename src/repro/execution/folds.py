"""Precomputed cross-validation fold plans.

The paper scores every configuration ``f(λ, A, D)`` with stratified k-fold
cross-validation on the same dataset, yet the seed implementation re-derived
the folds inside every single evaluation.  A :class:`FoldPlan` materialises
the split once per ``(dataset, cv, random_state)`` and is shared by every
configuration the engine evaluates on that dataset — the folds are identical
to what :func:`repro.learners.validation.cross_val_score` would produce, so
scores are bit-for-bit unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..learners.metrics import accuracy_score
from ..learners.validation import cross_val_score_folds, plain_folds, stratified_folds
from ..obs.profiler import profiled

__all__ = ["FoldPlan"]


@dataclass
class FoldPlan:
    """A reusable list of ``(train_idx, test_idx)`` pairs for one dataset."""

    folds: list[tuple[np.ndarray, np.ndarray]]
    cv: int
    random_state: int | None = None
    metadata: dict = field(default_factory=dict)

    @classmethod
    def stratified(cls, y, cv: int = 5, random_state: int | None = None) -> "FoldPlan":
        """Build the plan :func:`cross_val_score` would use for ``(y, cv, seed)``."""
        return cls(
            folds=stratified_folds(y, cv=cv, random_state=random_state),
            cv=cv,
            random_state=random_state,
        )

    @classmethod
    def kfold(cls, y, cv: int = 5, random_state: int | None = None) -> "FoldPlan":
        """Plain (unstratified) k-fold plan — the regression CV protocol."""
        return cls(
            folds=plain_folds(y, cv=cv, random_state=random_state),
            cv=cv,
            random_state=random_state,
            metadata={"stratified": False},
        )

    @classmethod
    def for_task(
        cls, y, task: str = "classification", cv: int = 5, random_state: int | None = None
    ) -> "FoldPlan":
        """Task-appropriate plan: stratified folds for classification, plain
        k-fold for regression (continuous targets cannot be stratified).
        Unknown task strings raise rather than silently stratifying."""
        from ..datasets.task import resolve_task

        if resolve_task(task).is_regression:
            return cls.kfold(y, cv=cv, random_state=random_state)
        return cls.stratified(y, cv=cv, random_state=random_state)

    @property
    def n_splits(self) -> int:
        return len(self.folds)

    def scores(
        self,
        estimator,
        X,
        y,
        scoring: Callable[[Sequence, Sequence], float] = accuracy_score,
        error_score: float = 0.0,
    ) -> np.ndarray:
        """Per-fold scores of ``estimator`` (crashing folds score ``error_score``)."""
        with profiled("cv_folds"):
            return cross_val_score_folds(estimator, X, y, self.folds, scoring, error_score)

    def score(
        self,
        estimator,
        X,
        y,
        scoring: Callable[[Sequence, Sequence], float] = accuracy_score,
        error_score: float = 0.0,
    ) -> float:
        """Mean CV score — the paper's ``f(λ, A, D)`` on precomputed folds."""
        return float(self.scores(estimator, X, y, scoring, error_score).mean())
