"""Pluggable multi-writer storage backends behind :class:`~repro.execution.store.ResultStore`.

The store began life as sharded JSONL behind one in-process lock — perfect
for one host, a hard ceiling for a fleet.  This module extracts the storage
layer into a small :class:`StoreBackend` protocol so the same ``ResultStore``
API (and everything above it: engine write-through, warm starts, cell-level
resume, the :class:`~repro.execution.coordinator.WorkCoordinator`) can run
over three very different substrates:

* :class:`JsonlBackend` — the original append-only JSONL shards.  Safe for
  many *threads* through the store lock, and for many *processes* through
  O_APPEND line appends plus merge-on-compact (a compaction re-reads the
  on-disk state before rewriting, so it can never clobber lines another
  process appended after this one loaded the shard).
* :class:`SqliteBackend` — one WAL-mode ``sqlite3`` database for many local
  processes.  Appends are upserts inside sqlite's own locking, so concurrent
  writers serialise in the database instead of racing on file offsets;
  format versions are isolated by table name (``results_v1`` …), so a
  foreign-version database reads as empty and never poisons fresh writes.
* :class:`HttpStoreBackend` — a stdlib ``urllib`` client for the
  :mod:`repro.service.store_server` HTTP front end, for writers on other
  hosts.  The server wraps a local ``ResultStore`` (either backend) and
  serialises all writers under its lock.

Backends deal in whole-context *images* (``ShardImage``): the store loads a
context once, serves gets from memory, and writes through on every put.
``ResultStore.refresh()`` drops an image so the next access re-reads the
shared substrate — that is how cross-process readers observe each other.

Scores travel as ``repr`` strings wherever the substrate cannot hold every
IEEE double faithfully (sqlite stores NaN as NULL; strict JSON has no NaN
literal), and parse back bit-exactly with ``float()``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import urllib.request
from abc import ABC, abstractmethod
from hashlib import blake2s
from pathlib import Path
from typing import TYPE_CHECKING

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from .store import StoreStats

__all__ = [
    "ShardImage",
    "StoreBackend",
    "JsonlBackend",
    "SqliteBackend",
    "HttpStoreBackend",
    "resolve_backend",
]

_KEY_FIELD = "k"
_SCORE_FIELD = "s"
_CONFIG_FIELD = "c"

#: Rotation ceiling for JSONL sidecar shards (see JsonlBackend._chain).
_MAX_ROTATIONS = 8


class ShardImage:
    """In-memory image of one context: key → (score, config) plus file state."""

    __slots__ = ("scores", "configs", "live_lines")

    def __init__(self) -> None:
        self.scores: dict[str, float] = {}
        self.configs: dict[str, dict | None] = {}
        self.live_lines = 0  # data records in the write target (incl. superseded)

    def merge_record(self, key: str, score: float, config: dict | None) -> None:
        """Apply one data record (later records supersede earlier ones)."""
        self.scores[key] = score
        if config is not None or key not in self.configs:
            self.configs[key] = config


class StoreBackend(ABC):
    """Storage substrate behind a :class:`ResultStore`.

    All methods are called under the owning store's lock, so backends need no
    locking of their own against sibling *threads* — only against sibling
    *processes* (that is the whole point of the non-JSONL implementations).
    ``load`` must never raise; ``append`` signals failure with ``OSError``
    (the store counts it and carries on).
    """

    name: str = "backend"

    @abstractmethod
    def load(self, context: str) -> ShardImage:
        """Read the full image for ``context`` (empty image on any failure)."""

    @abstractmethod
    def append(self, context: str, key: str, score: float, config: dict | None) -> None:
        """Write one record through; raises ``OSError`` on failure."""

    @abstractmethod
    def compact(self, context: str, memory: ShardImage) -> tuple[int, ShardImage] | None:
        """Reclaim dead storage for ``context``; never lose concurrent writes.

        Implementations must merge the *current on-disk state* with the
        caller's in-memory ``memory`` image before any rewrite, so records
        appended by other processes after this store loaded the context
        survive.  Returns ``(reclaimed, merged image)``, or ``None`` when
        there is nothing to compact.  ``OSError`` means the rewrite failed.
        """

    @abstractmethod
    def contexts(self) -> list[str]:
        """Every context present in the substrate (best effort, never raises)."""

    def close(self) -> None:
        """Release substrate handles (idempotent)."""

    def describe(self) -> dict:
        return {"backend": self.name}


class JsonlBackend(StoreBackend):
    """Append-only JSONL shards, one file per context (the original layout).

    Multi-writer behaviour:

    * many threads — serialised by the owning store's lock;
    * many processes — appends are single buffered writes to an ``O_APPEND``
      handle (atomic on POSIX for line-sized writes), duplicate headers from
      racing first-writers are tolerated on load, and :meth:`compact`
      re-reads the on-disk state before rewriting so another process's
      appends are merged instead of clobbered.

    Foreign-version shards never poison fresh writes: when the primary shard
    carries a mismatched (or truncated-away) header, reads skip it — counted
    in ``stats.version_skips``, the file is never deleted — and writes rotate
    to a sidecar shard (``<shard>.r1.jsonl``, ``.r2`` …) with a fresh
    current-version header, which later loads pick up again.
    """

    name = "jsonl"

    def __init__(self, root: str | Path, format_version: int, stats: "StoreStats") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.format_version = int(format_version)
        self.stats = stats
        # context → (write path, header already on disk) — set by load().
        self._write_state: dict[str, tuple[Path, bool]] = {}

    # -- layout ------------------------------------------------------------------------
    def shard_path(self, context: str) -> Path:
        """Primary shard for ``context``: readable slug + collision-proof digest."""
        digest = blake2s(context.encode("utf-8"), digest_size=8).hexdigest()
        slug = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in context)[:48]
        return self.root / f"{slug or 'shard'}.{digest}.jsonl"

    def _chain(self, context: str) -> list[Path]:
        """Primary shard plus its rotation sidecars, in supersession order."""
        primary = self.shard_path(context)
        stem = primary.name[: -len(".jsonl")]
        return [primary] + [
            self.root / f"{stem}.r{n}.jsonl" for n in range(1, _MAX_ROTATIONS + 1)
        ]

    def _header(self, context: str) -> dict:
        return {"format_version": self.format_version, "context": context}

    # -- parsing -----------------------------------------------------------------------
    def _parse_shard(
        self, raw: str, count_stats: bool = True
    ) -> tuple[list[tuple[str, float, dict | None]], int, bool, bool]:
        """``(records, n_data_lines, header_seen, version_ok)`` for one file."""
        header_seen = False
        version_ok = True
        records: list[tuple[str, float, dict | None]] = []
        n_data_lines = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if count_stats:
                    self.stats.corrupt_records += 1
                continue
            if not isinstance(record, dict):
                if count_stats:
                    self.stats.corrupt_records += 1
                continue
            if "format_version" in record:
                header_seen = True
                if record.get("format_version") != self.format_version:
                    version_ok = False
                continue
            key = record.get(_KEY_FIELD)
            score = record.get(_SCORE_FIELD)
            if not isinstance(key, str) or not isinstance(score, (int, float)):
                if count_stats:
                    self.stats.corrupt_records += 1
                continue
            config = record.get(_CONFIG_FIELD)
            records.append((key, float(score), config if isinstance(config, dict) else None))
            n_data_lines += 1
        return records, n_data_lines, header_seen, version_ok

    def _read_chain(self, context: str, count_stats: bool = True) -> tuple[ShardImage, Path, bool]:
        """Merge the shard chain; returns ``(image, write_path, header_on_disk)``."""
        image = ShardImage()
        chain = self._chain(context)
        write_path = chain[0]
        header_on_disk = False
        read_any = False
        for index, path in enumerate(chain):
            try:
                raw = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            read_any = True
            records, n_data, header_seen, version_ok = self._parse_shard(
                raw, count_stats=count_stats
            )
            if header_seen and version_ok:
                # Healthy current-version shard: contributes records and is
                # the append target (until a later chain file supersedes it).
                for key, score, config in records:
                    image.merge_record(key, score, config)
                image.live_lines = n_data
                write_path, header_on_disk = path, True
            elif not header_seen and n_data == 0:
                # Empty or pure-garbage file: contributes nothing but is safe
                # to append to (the next put writes a fresh header first).
                write_path, header_on_disk = path, False
                image.live_lines = 0
            else:
                # Foreign-version or headerless-with-data shard: ignored
                # wholesale (counted, never deleted) and NEVER appended to —
                # writes rotate to the next sidecar so they survive reloads.
                if n_data and count_stats:
                    self.stats.version_skips += 1
                rotated = chain[min(index + 1, len(chain) - 1)]
                if not rotated.exists():
                    write_path, header_on_disk = rotated, False
                    image.live_lines = 0
        if read_any and count_stats:
            self.stats.contexts_loaded += 1
        return image, write_path, header_on_disk

    # -- StoreBackend API --------------------------------------------------------------
    def load(self, context: str) -> ShardImage:
        image, write_path, header_on_disk = self._read_chain(context)
        self._write_state[context] = (write_path, header_on_disk)
        return image

    def append(self, context: str, key: str, score: float, config: dict | None) -> None:
        state = self._write_state.get(context)
        if state is None:  # load() not called yet (defensive; store always loads first)
            _, write_path, header_on_disk = self._read_chain(context, count_stats=False)
            state = (write_path, header_on_disk)
        path, header_on_disk = state
        record = {_KEY_FIELD: key, _SCORE_FIELD: score}
        if config is not None:
            record[_CONFIG_FIELD] = config
        with path.open("a", encoding="utf-8") as handle:
            if not header_on_disk:
                handle.write(json.dumps(self._header(context)) + "\n")
            handle.write(json.dumps(record) + "\n")
            handle.flush()
        self._write_state[context] = (path, True)

    def compact(self, context: str, memory: ShardImage) -> tuple[int, ShardImage] | None:
        # Merge-on-compact: re-read the on-disk chain so lines other
        # processes appended after this store loaded the shard survive the
        # rewrite (the historical lost-update bug).
        fresh, write_path, _ = self._read_chain(context, count_stats=False)
        merged = ShardImage()
        merged.scores.update(fresh.scores)
        merged.configs.update(fresh.configs)
        for key, score in memory.scores.items():
            if key not in merged.scores:
                merged.scores[key] = score
                merged.configs[key] = memory.configs.get(key)
        if not merged.scores:
            return None
        lines = [json.dumps(self._header(context))]
        for key in sorted(merged.scores):
            record = {_KEY_FIELD: key, _SCORE_FIELD: merged.scores[key]}
            if merged.configs.get(key) is not None:
                record[_CONFIG_FIELD] = merged.configs[key]
            lines.append(json.dumps(record))
        tmp = write_path.with_name(write_path.name + ".tmp")  # matches *.jsonl.tmp ignores
        tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
        os.replace(tmp, write_path)
        reclaimed = max(0, fresh.live_lines - len(merged.scores))
        merged.live_lines = len(merged.scores)
        self._write_state[context] = (write_path, True)
        return reclaimed, merged

    def contexts(self) -> list[str]:
        found = set()
        for path in sorted(self.root.glob("*.jsonl")):
            try:
                with path.open("r", encoding="utf-8", errors="replace") as handle:
                    first = handle.readline().strip()
                record = json.loads(first) if first else None
            except (OSError, ValueError):
                continue
            if isinstance(record, dict) and isinstance(record.get("context"), str):
                found.add(record["context"])
        return sorted(found)

    def describe(self) -> dict:
        return {"backend": self.name, "root": str(self.root)}


class SqliteBackend(StoreBackend):
    """One WAL-mode sqlite database shared by many local processes.

    WAL mode gives single-writer/many-reader concurrency without readers
    blocking writers; appends are upserts, so idempotent re-puts and
    superseding re-puts are one primary-key write either way.  Each format
    version owns its own table (``results_v<N>``), so a database written by
    a different store version reads as empty instead of poisoning anything.

    NaN cannot live in a sqlite ``REAL`` column (it becomes NULL), so scores
    are stored as ``repr`` text and parsed back bit-exactly.
    """

    name = "sqlite"

    def __init__(
        self,
        root: str | Path,
        format_version: int,
        stats: "StoreStats",
        filename: str = "results.sqlite3",
        timeout: float = 30.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / filename
        self.table = f"results_v{int(format_version)}"
        self.stats = stats
        self.timeout = float(timeout)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None

    def _connection(self) -> sqlite3.Connection:
        # A connection must never cross a fork: workers spawned from a process
        # holding one would corrupt the WAL.  Reopen lazily per pid.
        if self._conn is None or self._pid != os.getpid():
            conn = sqlite3.connect(
                str(self.path),
                timeout=self.timeout,
                check_same_thread=False,  # the store lock serialises threads
                isolation_level=None,  # autocommit; sqlite transacts per statement
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            try:
                conn.execute(
                    f"CREATE TABLE IF NOT EXISTS {self.table} ("
                    "context TEXT NOT NULL, key TEXT NOT NULL, "
                    "score TEXT NOT NULL, config TEXT, "
                    "PRIMARY KEY (context, key))"
                )
            except sqlite3.OperationalError:
                pass  # racing creator already made it
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def _select_image(self, context: str) -> ShardImage:
        image = ShardImage()
        rows = self._connection().execute(
            f"SELECT key, score, config FROM {self.table} WHERE context = ?",
            (context,),
        )
        for key, score_repr, config_text in rows:
            try:
                score = float(score_repr)
            except (TypeError, ValueError):
                self.stats.corrupt_records += 1
                continue
            config = None
            if config_text:
                try:
                    parsed = json.loads(config_text)
                    config = parsed if isinstance(parsed, dict) else None
                except ValueError:
                    self.stats.corrupt_records += 1
            image.merge_record(key, score, config)
        image.live_lines = len(image.scores)
        return image

    # -- StoreBackend API --------------------------------------------------------------
    def load(self, context: str) -> ShardImage:
        try:
            image = self._select_image(context)
        except sqlite3.Error:
            self.stats.load_errors += 1
            return ShardImage()
        self.stats.contexts_loaded += 1
        return image

    def append(self, context: str, key: str, score: float, config: dict | None) -> None:
        config_text = json.dumps(config) if config is not None else None
        try:
            self._connection().execute(
                f"INSERT INTO {self.table} (context, key, score, config) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(context, key) DO UPDATE SET "
                # COALESCE preserves a stored config when a superseding put
                # carries none — matching the JSONL loader's behaviour.
                "score = excluded.score, config = COALESCE(excluded.config, config)",
                (context, key, repr(float(score)), config_text),
            )
        except sqlite3.Error as exc:
            raise OSError(f"sqlite append failed: {exc}") from exc

    def compact(self, context: str, memory: ShardImage) -> tuple[int, ShardImage] | None:
        # Rows are already one-per-key; compaction just folds fresh
        # cross-process state into the caller's image and checkpoints the WAL.
        try:
            merged = self._select_image(context)
            for key, score in memory.scores.items():
                if key not in merged.scores:
                    self.append(context, key, score, memory.configs.get(key))
                    merged.merge_record(key, score, memory.configs.get(key))
            merged.live_lines = len(merged.scores)
            self._connection().execute("PRAGMA wal_checkpoint(PASSIVE)")
        except sqlite3.Error as exc:
            raise OSError(f"sqlite compact failed: {exc}") from exc
        if not merged.scores:
            return None
        return 0, merged

    def contexts(self) -> list[str]:
        try:
            rows = self._connection().execute(
                f"SELECT DISTINCT context FROM {self.table} ORDER BY context"
            )
            return [row[0] for row in rows]
        except sqlite3.Error:
            return []

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._conn = None
        self._pid = None

    def describe(self) -> dict:
        return {"backend": self.name, "path": str(self.path), "table": self.table}


class HttpStoreBackend(StoreBackend):
    """Stdlib HTTP client for a :mod:`repro.service.store_server` endpoint.

    The server owns the authoritative ``ResultStore`` and serialises all
    writers; this client mirrors one context image per :meth:`load` and
    writes through per :meth:`append`.  Scores cross the wire as ``repr``
    strings so the JSON stays strict (no NaN/Infinity literals) and every
    IEEE double round-trips bit-exactly.

    A dead or unreachable server degrades exactly like a corrupt shard:
    loads come back empty (counted in ``stats.load_errors``), appends raise
    ``OSError`` and are counted as write errors by the store — a search can
    never be broken by its persistence tier.
    """

    name = "http"

    def __init__(self, url: str, stats: "StoreStats", timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.stats = stats
        self.timeout = float(timeout)

    # -- wire --------------------------------------------------------------------------
    def _request(self, route: str, payload: dict | None = None) -> dict:
        if payload is None:
            request = urllib.request.Request(self.url + route, method="GET")
        else:
            request = urllib.request.Request(
                self.url + route,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        header = obs.trace_header()
        if header is not None:
            # Carry the caller's trace across the wire so the store server's
            # request spans join the client's trace tree.
            request.add_header(obs.TRACE_HEADER, header)
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            body = json.loads(response.read().decode("utf-8"))
        if not isinstance(body, dict):
            raise OSError(f"store server returned non-object body for {route}")
        return body

    # -- StoreBackend API --------------------------------------------------------------
    def load(self, context: str) -> ShardImage:
        image = ShardImage()
        try:
            body = self._request("/store/image", {"context": context})
        except (OSError, ValueError):
            self.stats.load_errors += 1
            return image
        scores = body.get("scores") or {}
        configs = body.get("configs") or {}
        for key, score_repr in scores.items():
            try:
                score = float(score_repr)
            except (TypeError, ValueError):
                self.stats.corrupt_records += 1
                continue
            config = configs.get(key)
            image.merge_record(key, score, config if isinstance(config, dict) else None)
        image.live_lines = int(body.get("live_lines", len(image.scores)))
        self.stats.contexts_loaded += 1
        return image

    def append(self, context: str, key: str, score: float, config: dict | None) -> None:
        try:
            self._request(
                "/store/put",
                {
                    "context": context,
                    "key": key,
                    "score": repr(float(score)),
                    "config": config,
                },
            )
        except ValueError as exc:  # unparseable response body
            raise OSError(f"store server returned invalid response: {exc}") from exc

    def compact(self, context: str, memory: ShardImage) -> tuple[int, ShardImage] | None:
        try:
            body = self._request("/store/compact", {"context": context})
        except ValueError as exc:
            raise OSError(f"store server returned invalid response: {exc}") from exc
        merged = self.load(context)
        for key, score in memory.scores.items():
            if key not in merged.scores:
                self.append(context, key, score, memory.configs.get(key))
                merged.merge_record(key, score, memory.configs.get(key))
        if not merged.scores:
            return None
        merged.live_lines = len(merged.scores)
        return int(body.get("reclaimed", 0)), merged

    def contexts(self) -> list[str]:
        try:
            body = self._request("/store/contexts")
        except (OSError, ValueError):
            return []
        contexts = body.get("contexts")
        return sorted(str(c) for c in contexts) if isinstance(contexts, list) else []

    def describe(self) -> dict:
        return {"backend": self.name, "url": self.url}


def resolve_backend(
    root: str | Path,
    backend: "str | StoreBackend",
    format_version: int,
    stats: "StoreStats",
) -> StoreBackend:
    """Build the backend a :class:`ResultStore` was asked for.

    ``backend`` may be an instance (used as-is), ``"jsonl"``/``"sqlite"``, or
    ``"http"`` — for which ``root`` must be the server URL.  An
    ``http(s)://`` root selects the HTTP backend automatically.
    """
    if isinstance(backend, StoreBackend):
        return backend
    root_text = str(root)
    if root_text.startswith(("http://", "https://")):
        return HttpStoreBackend(root_text, stats)
    if backend == "jsonl":
        return JsonlBackend(root, format_version, stats)
    if backend == "sqlite":
        return SqliteBackend(root, format_version, stats)
    if backend == "http":
        raise ValueError(
            "backend='http' needs an http(s):// root, e.g. ResultStore('http://host:port')"
        )
    raise ValueError(f"unknown store backend {backend!r} (use 'jsonl', 'sqlite' or 'http')")
