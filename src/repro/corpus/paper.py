"""Research-paper metadata and the reliability ordering of Table I.

Table I ranks papers by four fields, in priority order:

1. ``Paper level`` — 'A' > 'B' > 'C' > 'D'
2. ``Paper type`` — 'Journal' > 'Conference'
3. ``Influence factor`` — larger is better
4. ``Average annual citation number`` — larger is better

The knowledge-acquisition algorithm (Algorithm 1) converts this ordering into
per-paper reliability values by ranking all papers ascending and using each
paper's rank index as its edge weight in the information network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Paper", "PAPER_LEVELS", "PAPER_TYPES", "rank_papers", "reliability_index"]

PAPER_LEVELS = ("A", "B", "C", "D")
PAPER_TYPES = ("Journal", "Conference")

_LEVEL_ORDER = {level: i for i, level in enumerate(PAPER_LEVELS)}  # A=0 best
_TYPE_ORDER = {"Journal": 0, "Conference": 1}  # Journal best


@dataclass(frozen=True)
class Paper:
    """Metadata of one research paper contributing experiences."""

    paper_id: str
    title: str = ""
    level: str = "C"
    paper_type: str = "Conference"
    influence_factor: float = 0.0
    annual_citations: int = 0
    year: int = 2015
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.level not in PAPER_LEVELS:
            raise ValueError(f"{self.paper_id}: unknown paper level {self.level!r}")
        if self.paper_type not in PAPER_TYPES:
            raise ValueError(f"{self.paper_id}: unknown paper type {self.paper_type!r}")
        if self.influence_factor < 0:
            raise ValueError(f"{self.paper_id}: influence factor must be >= 0")
        if self.annual_citations < 0:
            raise ValueError(f"{self.paper_id}: annual citations must be >= 0")

    def reliability_key(self) -> tuple:
        """Sort key: *smaller* key means *more* reliable (Table I priorities)."""
        return (
            _LEVEL_ORDER[self.level],
            _TYPE_ORDER[self.paper_type],
            -self.influence_factor,
            -self.annual_citations,
            self.paper_id,  # deterministic tie-break
        )


def rank_papers(papers: list[Paper]) -> list[Paper]:
    """Rank papers in *ascending* order of reliability (least reliable first).

    Algorithm 1 ("PRank") uses the index of a paper in this list as its
    reliability weight, so a larger index means a more trustworthy experience.
    """
    return sorted(papers, key=lambda p: p.reliability_key(), reverse=True)


def reliability_index(papers: list[Paper]) -> dict[str, int]:
    """Map paper_id -> reliability weight (index in the ascending ranking)."""
    return {paper.paper_id: i for i, paper in enumerate(rank_papers(papers))}
