"""Parser for hand-authored paper-report files.

The paper lists "design an algorithm to accurately and automatically extract
the information we need from the research papers" as future work; in practice
the 20 papers of its evaluation were digested by hand.  This module provides
the middle ground the reproduction needs: a small, line-oriented text format a
human can fill in per paper in a minute, which parses into the same
:class:`~repro.corpus.experience.ExperienceSet` the rest of the pipeline
consumes.

Format (``#`` starts a comment, blank lines separate papers)::

    paper: zhang2017
    title: An up-to-date comparison of state-of-the-art classification algorithms
    level: A
    type: Journal
    influence_factor: 4.3
    annual_citations: 60
    year: 2017
    instance: Wine | best: BayesNet | others: LDA, RandomForest, LibSVM
    instance: Iris | best: RandomForest | others: J48, NaiveBayes

Each ``instance:`` line is one experience quadruple; the metadata lines above
it describe the paper (Table I reliability fields).  Several papers may appear
in one file, separated by a ``paper:`` line or a blank line.
"""

from __future__ import annotations

from pathlib import Path

from .experience import Experience, ExperienceSet
from .paper import Paper

__all__ = ["ParseError", "parse_report", "parse_report_file"]


class ParseError(ValueError):
    """Raised when a report file does not follow the expected format."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        location = f" (line {line_number})" if line_number is not None else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number


_PAPER_FIELDS = {
    "title": str,
    "level": str,
    "type": str,
    "influence_factor": float,
    "annual_citations": int,
    "year": int,
}


def _finish_paper(
    corpus: ExperienceSet,
    paper_id: str | None,
    fields: dict,
    experiences: list[tuple[int, str, str, list[str]]],
) -> None:
    if paper_id is None:
        if experiences:
            line_number = experiences[0][0]
            raise ParseError("experience lines appear before any 'paper:' line", line_number)
        return
    paper = Paper(
        paper_id=paper_id,
        title=fields.get("title", ""),
        level=fields.get("level", "C"),
        paper_type=fields.get("type", "Conference"),
        influence_factor=fields.get("influence_factor", 0.0),
        annual_citations=fields.get("annual_citations", 0),
        year=fields.get("year", 2015),
    )
    corpus.add_paper(paper)
    for line_number, instance, best, others in experiences:
        try:
            corpus.add(
                Experience(
                    paper_id=paper_id,
                    instance=instance,
                    best_algorithm=best,
                    other_algorithms=tuple(others),
                )
            )
        except ValueError as exc:
            raise ParseError(str(exc), line_number) from exc


def _parse_instance_line(line: str, line_number: int) -> tuple[str, str, list[str]]:
    body = line.split(":", 1)[1].strip()
    parts = [part.strip() for part in body.split("|")]
    instance = parts[0]
    best = ""
    others: list[str] = []
    for part in parts[1:]:
        if part.lower().startswith("best:"):
            best = part.split(":", 1)[1].strip()
        elif part.lower().startswith("others:"):
            raw = part.split(":", 1)[1].strip()
            others = [name.strip() for name in raw.split(",") if name.strip()]
        elif part:
            raise ParseError(f"unrecognised instance clause {part!r}", line_number)
    if not instance:
        raise ParseError("instance line has an empty instance name", line_number)
    if not best:
        raise ParseError(f"instance {instance!r} has no 'best:' clause", line_number)
    return instance, best, others


def parse_report(text: str) -> ExperienceSet:
    """Parse report text into an :class:`ExperienceSet`."""
    corpus = ExperienceSet()
    paper_id: str | None = None
    fields: dict = {}
    experiences: list[tuple[int, str, str, list[str]]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        key = line.split(":", 1)[0].strip().lower() if ":" in line else ""
        if key == "paper":
            _finish_paper(corpus, paper_id, fields, experiences)
            paper_id = line.split(":", 1)[1].strip()
            if not paper_id:
                raise ParseError("'paper:' line has an empty identifier", line_number)
            fields, experiences = {}, []
        elif key == "instance":
            experiences.append((line_number, *_parse_instance_line(line, line_number)))
        elif key in _PAPER_FIELDS:
            converter = _PAPER_FIELDS[key]
            value = line.split(":", 1)[1].strip()
            try:
                fields[key] = converter(value)
            except ValueError as exc:
                raise ParseError(
                    f"could not parse {key}={value!r} as {converter.__name__}", line_number
                ) from exc
        elif ":" in line:
            raise ParseError(f"unknown field {key!r}", line_number)
        else:
            raise ParseError(f"unparseable line {line!r}", line_number)

    _finish_paper(corpus, paper_id, fields, experiences)
    if len(corpus.papers) == 0:
        raise ParseError("report contains no papers")
    return corpus


def parse_report_file(path: str | Path) -> ExperienceSet:
    """Parse a report file (see module docstring for the format)."""
    return parse_report(Path(path).read_text())
