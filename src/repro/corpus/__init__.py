"""Research-paper corpus substrate: papers, experiences and the simulated corpus."""

from .experience import Experience, ExperienceSet
from .generator import CorpusConfig, CorpusGenerator, generate_corpus
from .paper import PAPER_LEVELS, PAPER_TYPES, Paper, rank_papers, reliability_index
from .parser import ParseError, parse_report, parse_report_file
from .serialization import (
    corpus_from_dict,
    corpus_to_dict,
    experience_from_dict,
    experience_to_dict,
    load_corpus,
    paper_from_dict,
    paper_to_dict,
    save_corpus,
)

__all__ = [
    "Experience",
    "ExperienceSet",
    "CorpusConfig",
    "CorpusGenerator",
    "generate_corpus",
    "PAPER_LEVELS",
    "PAPER_TYPES",
    "Paper",
    "rank_papers",
    "reliability_index",
    "ParseError",
    "parse_report",
    "parse_report_file",
    "corpus_from_dict",
    "corpus_to_dict",
    "experience_from_dict",
    "experience_to_dict",
    "load_corpus",
    "paper_from_dict",
    "paper_to_dict",
    "save_corpus",
]
