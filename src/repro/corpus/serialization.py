"""JSON serialisation of papers, experiences and corpora.

A corpus can be saved to disk and reloaded so that knowledge acquisition can
be run without re-measuring the performance table, and so that hand-curated
corpora (actual extractions from real papers, the paper's intended input) can
be dropped in using the same format.
"""

from __future__ import annotations

import json
from pathlib import Path

from .experience import Experience, ExperienceSet
from .paper import Paper

__all__ = [
    "paper_to_dict",
    "paper_from_dict",
    "experience_to_dict",
    "experience_from_dict",
    "corpus_to_dict",
    "corpus_from_dict",
    "save_corpus",
    "load_corpus",
]


def paper_to_dict(paper: Paper) -> dict:
    return {
        "paper_id": paper.paper_id,
        "title": paper.title,
        "level": paper.level,
        "paper_type": paper.paper_type,
        "influence_factor": paper.influence_factor,
        "annual_citations": paper.annual_citations,
        "year": paper.year,
        "extra": dict(paper.extra),
    }


def paper_from_dict(payload: dict) -> Paper:
    return Paper(
        paper_id=payload["paper_id"],
        title=payload.get("title", ""),
        level=payload.get("level", "C"),
        paper_type=payload.get("paper_type", "Conference"),
        influence_factor=float(payload.get("influence_factor", 0.0)),
        annual_citations=int(payload.get("annual_citations", 0)),
        year=int(payload.get("year", 2015)),
        extra=dict(payload.get("extra", {})),
    )


def experience_to_dict(experience: Experience) -> dict:
    return {
        "paper_id": experience.paper_id,
        "instance": experience.instance,
        "best_algorithm": experience.best_algorithm,
        "other_algorithms": list(experience.other_algorithms),
    }


def experience_from_dict(payload: dict) -> Experience:
    return Experience(
        paper_id=payload["paper_id"],
        instance=payload["instance"],
        best_algorithm=payload["best_algorithm"],
        other_algorithms=tuple(payload.get("other_algorithms", [])),
    )


def corpus_to_dict(corpus: ExperienceSet) -> dict:
    return {
        "papers": [paper_to_dict(p) for p in corpus.papers],
        "experiences": [experience_to_dict(e) for e in corpus.experiences],
    }


def corpus_from_dict(payload: dict) -> ExperienceSet:
    corpus = ExperienceSet()
    for paper_payload in payload.get("papers", []):
        corpus.add_paper(paper_from_dict(paper_payload))
    for experience_payload in payload.get("experiences", []):
        corpus.add(experience_from_dict(experience_payload))
    return corpus


def save_corpus(corpus: ExperienceSet, path: str | Path) -> None:
    Path(path).write_text(json.dumps(corpus_to_dict(corpus), indent=2))


def load_corpus(path: str | Path) -> ExperienceSet:
    return corpus_from_dict(json.loads(Path(path).read_text()))
