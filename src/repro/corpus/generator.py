"""Synthetic research-paper corpus generator.

The original paper hand-extracts experiment reports from 20 published
comparison studies (its references [19]-[23], [25]-[39]).  Those PDFs are not
available offline, so this module *simulates* the corpus: it takes a measured
:class:`~repro.evaluation.performance.PerformanceTable` (real accuracies of our
catalogue on the knowledge datasets) and emits papers that

* each examine a random subset of datasets and a random subset of algorithms
  (papers report fragmented, partial comparisons),
* observe accuracies through paper-specific noise (less reliable papers are
  noisier, so papers can disagree about which algorithm wins — the conflicts
  Algorithm 1 must resolve), and
* carry the Table I reliability metadata (level, type, influence factor,
  citations) correlated with their noise level.

This preserves exactly the structure the knowledge-acquisition algorithm
consumes while replacing manual scraping with a controlled, reproducible
simulation (documented as a substitution in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..datasets.dataset import Dataset
from ..evaluation.performance import PerformanceTable
from ..execution import ResultStore, WorkCoordinator
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task
from .experience import Experience, ExperienceSet
from .paper import PAPER_LEVELS, Paper

__all__ = ["CorpusConfig", "CorpusGenerator", "generate_corpus"]


@dataclass
class CorpusConfig:
    """Knobs controlling the simulated corpus."""

    n_papers: int = 20
    min_datasets_per_paper: int = 3
    max_datasets_per_paper: int = 8
    min_algorithms_per_paper: int = 6
    max_algorithms_per_paper: int = 14
    # Noise added to observed accuracies; scaled up for unreliable papers.
    base_noise: float = 0.01
    unreliable_noise: float = 0.08
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_papers < 1:
            raise ValueError("n_papers must be >= 1")
        if self.min_datasets_per_paper < 1:
            raise ValueError("min_datasets_per_paper must be >= 1")
        if self.max_datasets_per_paper < self.min_datasets_per_paper:
            raise ValueError("max_datasets_per_paper < min_datasets_per_paper")
        if self.min_algorithms_per_paper < 2:
            raise ValueError("papers must compare at least 2 algorithms")
        if self.max_algorithms_per_paper < self.min_algorithms_per_paper:
            raise ValueError("max_algorithms_per_paper < min_algorithms_per_paper")
        if self.base_noise < 0 or self.unreliable_noise < 0:
            raise ValueError("noise levels must be >= 0")


class CorpusGenerator:
    """Generate an :class:`ExperienceSet` from measured algorithm performance."""

    def __init__(
        self,
        performance: PerformanceTable,
        config: CorpusConfig | None = None,
    ) -> None:
        self.performance = performance
        self.config = config or CorpusConfig()

    # -- paper metadata -----------------------------------------------------------------
    def _make_paper(self, index: int, rng: np.random.Generator) -> tuple[Paper, float]:
        """Create paper metadata; returns (paper, observation noise level)."""
        # Reliability is drawn first, then metadata and noise are derived from it
        # so that Table I's ordering correlates with how trustworthy the numbers are.
        reliability = float(rng.random())  # 1.0 = most reliable
        level = PAPER_LEVELS[min(3, int((1.0 - reliability) * 4))]
        paper_type = "Journal" if rng.random() < reliability else "Conference"
        influence_factor = round(float(reliability * 8.0 + rng.random()), 2)
        citations = int(reliability * 120 + rng.integers(0, 30))
        noise = (
            self.config.base_noise
            + (1.0 - reliability) * (self.config.unreliable_noise - self.config.base_noise)
        )
        paper = Paper(
            paper_id=f"paper_{index + 1:02d}",
            title=f"An empirical comparison of classification algorithms #{index + 1}",
            level=level,
            paper_type=paper_type,
            influence_factor=influence_factor,
            annual_citations=citations,
            year=int(1995 + rng.integers(0, 25)),
            extra={"noise": noise, "reliability": reliability},
        )
        return paper, noise

    # -- experiences -----------------------------------------------------------------------
    def _paper_experiences(
        self, paper: Paper, noise: float, rng: np.random.Generator
    ) -> list[Experience]:
        cfg = self.config
        dataset_names = self.performance.datasets
        algorithm_names = self.performance.algorithms
        # Clamp the per-paper ranges to what the table actually holds: a
        # catalogue (or dataset pool) smaller than the configured minimum
        # means every paper simply covers all of it, instead of crashing.
        dataset_low = min(cfg.min_datasets_per_paper, len(dataset_names))
        dataset_high = min(cfg.max_datasets_per_paper, len(dataset_names))
        algorithm_low = min(cfg.min_algorithms_per_paper, len(algorithm_names))
        algorithm_high = min(cfg.max_algorithms_per_paper, len(algorithm_names))
        n_datasets = int(rng.integers(dataset_low, dataset_high + 1))
        n_algorithms = int(rng.integers(algorithm_low, algorithm_high + 1))
        chosen_datasets = rng.choice(dataset_names, size=n_datasets, replace=False)
        chosen_algorithms = rng.choice(algorithm_names, size=n_algorithms, replace=False)
        experiences: list[Experience] = []
        for dataset in chosen_datasets:
            observed = {
                algorithm: self.performance.score(algorithm, dataset)
                + float(rng.normal(0.0, noise))
                for algorithm in chosen_algorithms
            }
            best = max(observed, key=observed.get)
            others = tuple(sorted(a for a in observed if a != best))
            experiences.append(
                Experience(
                    paper_id=paper.paper_id,
                    instance=str(dataset),
                    best_algorithm=str(best),
                    other_algorithms=others,
                )
            )
        return experiences

    def generate(self) -> ExperienceSet:
        """Generate the full simulated corpus (papers + experiences)."""
        rng = np.random.default_rng(self.config.random_state)
        corpus = ExperienceSet()
        for index in range(self.config.n_papers):
            paper, noise = self._make_paper(index, rng)
            corpus.add_paper(paper)
            for experience in self._paper_experiences(paper, noise, rng):
                corpus.add(experience)
        return corpus


def generate_corpus(
    datasets: list[Dataset],
    registry: AlgorithmRegistry | None = None,
    config: CorpusConfig | None = None,
    performance: PerformanceTable | None = None,
    cv: int = 3,
    max_records: int | None = 250,
    n_workers: int = 1,
    store: ResultStore | None = None,
    warm_start: bool = True,
    task: str = "classification",
    metric: str | None = None,
    coordinator: WorkCoordinator | None = None,
) -> tuple[ExperienceSet, PerformanceTable]:
    """End-to-end corpus generation from raw datasets.

    Measures (or reuses) a :class:`PerformanceTable` on ``datasets`` and then
    simulates the paper corpus on top of it.  Returns the corpus together with
    the underlying table so callers can audit the ground truth behind it.
    The measurement runs through the execution engine; ``n_workers > 1``
    evaluates the (algorithm, dataset) cells concurrently without adding any
    nondeterminism (per-cell seeds are fixed up front).  A ``store`` persists
    the measured cells so a repeat or interrupted corpus build resumes from
    disk (see :meth:`PerformanceTable.compute`); the simulation itself is
    deterministic given the table and config, so resuming the measurement
    reproduces the identical corpus.

    ``task="regression"`` measures a regressor catalogue with CV R² cells;
    papers then "report" noisy R² observations, and the knowledge pipeline
    consumes the resulting experiences exactly as for classification.

    A ``coordinator`` distributes the measurement across a worker fleet
    sharing one store backend (see :meth:`PerformanceTable.compute`); every
    fleet member calls ``generate_corpus`` with identical arguments and each
    obtains the same table — hence the same corpus.
    """
    registry = registry if registry is not None else registry_for_task(task)
    config = config or CorpusConfig()
    with obs.span(
        "corpus.generate",
        attrs={"n_datasets": len(datasets), "measured": performance is None},
    ):
        if performance is None:
            performance = PerformanceTable.compute(
                datasets,
                registry=registry,
                tune=False,
                cv=cv,
                max_records=max_records,
                random_state=config.random_state,
                n_workers=n_workers,
                store=store,
                warm_start=warm_start,
                task=task,
                metric=metric,
                coordinator=coordinator,
            )
        generator = CorpusGenerator(performance, config)
        return generator.generate(), performance
