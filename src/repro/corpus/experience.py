"""Experience records mined from research papers.

The paper (Section III-A) defines an experience as the quadruple
``(P, I, BestA_I^P, OtherAs_I^P)``: paper ``P`` reports that on task instance
``I`` the algorithm ``BestA`` outperformed every algorithm in ``OtherAs``.
``InfAll`` is simply the collection of all such quadruples over all papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .paper import Paper

__all__ = ["Experience", "ExperienceSet"]


@dataclass(frozen=True)
class Experience:
    """One quadruple ``(paper, instance, best algorithm, other algorithms)``."""

    paper_id: str
    instance: str
    best_algorithm: str
    other_algorithms: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.paper_id:
            raise ValueError("paper_id must be non-empty")
        if not self.instance:
            raise ValueError("instance must be non-empty")
        if not self.best_algorithm:
            raise ValueError("best_algorithm must be non-empty")
        if self.best_algorithm in self.other_algorithms:
            raise ValueError(
                f"{self.instance}: best algorithm {self.best_algorithm!r} also "
                "listed among the inferior algorithms"
            )

    @property
    def algorithms(self) -> tuple[str, ...]:
        """All algorithms mentioned by this experience (best first)."""
        return (self.best_algorithm, *self.other_algorithms)


class ExperienceSet:
    """The paper's ``InfAll``: experiences plus the metadata of their papers."""

    def __init__(
        self,
        experiences: Iterable[Experience] = (),
        papers: Iterable[Paper] = (),
    ) -> None:
        self._experiences: list[Experience] = []
        self._papers: dict[str, Paper] = {}
        for paper in papers:
            self.add_paper(paper)
        for experience in experiences:
            self.add(experience)

    # -- construction -------------------------------------------------------------------
    def add_paper(self, paper: Paper) -> None:
        if paper.paper_id in self._papers:
            raise ValueError(f"duplicate paper id {paper.paper_id!r}")
        self._papers[paper.paper_id] = paper

    def add(self, experience: Experience) -> None:
        if experience.paper_id not in self._papers:
            raise ValueError(
                f"experience references unknown paper {experience.paper_id!r}; "
                "add the Paper first"
            )
        self._experiences.append(experience)

    # -- access -------------------------------------------------------------------------
    @property
    def experiences(self) -> list[Experience]:
        return list(self._experiences)

    @property
    def papers(self) -> list[Paper]:
        return list(self._papers.values())

    def paper(self, paper_id: str) -> Paper:
        return self._papers[paper_id]

    def __len__(self) -> int:
        return len(self._experiences)

    def __iter__(self) -> Iterator[Experience]:
        return iter(self._experiences)

    def instances(self) -> list[str]:
        """All distinct task-instance names, in first-seen order (``IList``)."""
        seen: dict[str, None] = {}
        for experience in self._experiences:
            seen.setdefault(experience.instance, None)
        return list(seen)

    def algorithms(self) -> list[str]:
        """All distinct algorithm names mentioned anywhere in the experiences."""
        seen: dict[str, None] = {}
        for experience in self._experiences:
            for algorithm in experience.algorithms:
                seen.setdefault(algorithm, None)
        return list(seen)

    def related_to(self, instance: str) -> list[Experience]:
        """The paper's ``RInf_I``: experiences about one task instance."""
        return [e for e in self._experiences if e.instance == instance]

    def merge(self, other: "ExperienceSet") -> "ExperienceSet":
        """Return a new set combining this one with ``other`` (papers deduplicated)."""
        merged = ExperienceSet()
        for paper in self.papers:
            merged.add_paper(paper)
        for paper in other.papers:
            if paper.paper_id not in merged._papers:
                merged.add_paper(paper)
        for experience in self._experiences + other._experiences:
            merged.add(experience)
        return merged

    def __repr__(self) -> str:
        return (
            f"ExperienceSet(papers={len(self._papers)}, experiences={len(self._experiences)}, "
            f"instances={len(self.instances())})"
        )
