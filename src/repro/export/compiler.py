"""Compile fitted pipelines and estimators into dependency-free artifacts.

The compiler is the numpy side of the export subsystem (the ROADMAP's
sklearn-porter direction): it extracts the learned parameters of a fitted
:class:`~repro.learners.pipeline.Pipeline` (or bare estimator, or decision
model) through the ``export_params()`` contract and wraps them in a JSON
weights document that the numpy-free :mod:`~repro.export.interpreter`
replays with byte-identical predictions.

Artifacts come in two shapes:

* ``save_artifact`` — the JSON document on disk, loaded back with
  ``load_artifact`` into an :class:`~repro.export.interpreter.ExportedModel`
  (tiny interpreter, no numpy);
* ``write_source`` (:mod:`~repro.export.codegen`) — one generated pure-python
  source file with the parameters inlined, runnable anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .. import obs
from ..learners.pipeline import Pipeline
from .codegen import generate_source, write_source
from .interpreter import FORMAT, FORMAT_VERSION, ExportedModel

__all__ = [
    "ExportError",
    "export_document",
    "export_decision_model",
    "compile_model",
    "save_artifact",
    "load_artifact",
    "exportable_algorithms",
    "generate_source",
    "write_source",
]


class ExportError(TypeError):
    """The model (or its final estimator) does not support export."""


def _envelope(kind: str) -> dict[str, Any]:
    return {"format": FORMAT, "version": FORMAT_VERSION, "kind": kind}


def _estimator_params(estimator: Any) -> dict[str, Any]:
    export = getattr(estimator, "export_params", None)
    if export is None:
        raise ExportError(
            f"{type(estimator).__name__} does not support export: no "
            "export_params() — only the linear, tree/forest, kNN, naive-bayes "
            "and MLP families compile to artifacts"
        )
    return export()


def export_document(model: Any) -> dict[str, Any]:
    """The JSON weights document for a fitted pipeline or bare estimator."""
    if isinstance(model, Pipeline):
        document = _envelope("pipeline")
        document["pipeline"] = model.export_params()
        document["estimator"] = _estimator_params(model.estimator)
        return document
    document = _envelope("estimator")
    document["estimator"] = _estimator_params(model)
    return document


def export_decision_model(decision_model: Any) -> dict[str, Any]:
    """Export a fitted DMD decision model (SNA regressor + algorithm labels).

    The artifact maps meta-feature rows to per-algorithm scores; its
    ``predict`` returns the argmax algorithm name, matching
    ``DecisionModel.scores_matrix`` + first-maximum selection exactly.
    """
    document = _envelope("decision_model")
    document["regressor"] = _estimator_params(decision_model.regressor)
    document["labels"] = list(decision_model.labels)
    return document


def compile_model(model: Any) -> ExportedModel:
    """One-step export → interpreter, via a JSON round trip.

    The round trip guarantees the in-memory model sees exactly the same
    parameters a persisted artifact would.
    """
    return ExportedModel(json.loads(json.dumps(export_document(model))))


def save_artifact(document: dict[str, Any], path: str | Path) -> Path:
    """Write an export document as a JSON artifact file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


def load_artifact(path: str | Path) -> ExportedModel:
    """Load a JSON artifact file into a numpy-free predictor."""
    return ExportedModel.from_file(str(path))


def exportable_algorithms(registry: Any) -> list[str]:
    """Catalogue entries whose default-configured estimator supports export."""
    names = []
    for spec in registry:
        try:
            built = registry.build(spec.name, {})
        except Exception as exc:  # noqa: BLE001 — unbuildable specs are not exportable
            obs.error_event("export.exportable", exc)
            continue
        estimator = built.estimator if isinstance(built, Pipeline) else built
        if hasattr(estimator, "export_params"):
            names.append(spec.name)
    return names
