"""Numpy-free interpreter for exported model artifacts.

This module is deliberately restricted to the python standard library
(``json`` + ``math``): it is the runtime half of the export compiler, inlined
verbatim into generated single-file artifacts (see ``repro.export.codegen``)
and shipped to environments that have no numpy and no ``repro`` package.

**Do not import numpy or any repro module here** — the subprocess purity test
runs generated files with an empty ``PYTHONPATH`` and asserts that neither
appears in the source.

The interpreter replicates the live learners' prediction semantics operation
for operation (same standardisation, same normalisations, same first-maximum
argmax tie-breaking), so exported predictions match the live model exactly —
the compiler's byte-identical acceptance bar.
"""

import json
import math
from operator import mul

FORMAT = "repro-export"
FORMAT_VERSION = 1

#: Mirrors repro.learners.preprocessing: the canonical category for missing
#: values and the grouped long-tail category.
MISSING_CATEGORY = "__missing__"
RARE_CATEGORY = "__rare__"

_NAN = float("nan")


def _is_missing(value):
    return value is None or (isinstance(value, float) and value != value)


def _argmax(values):
    """First-maximum argmax — numpy's tie-breaking rule."""
    best = 0
    best_value = values[0]
    for i in range(1, len(values)):
        if values[i] > best_value:
            best = i
            best_value = values[i]
    return best


def _dot(a, b):
    # sum() starts at int 0 and 0 + x == x exactly, so this is the same
    # left-to-right accumulation as an explicit loop — just run in C.
    return sum(map(mul, a, b))


def _normalize_row(row):
    """Row normalisation used by the live ``BaseClassifier.predict_proba``."""
    total = 0.0
    for value in row:
        total += value
    if total <= 0:
        total = 1.0
    return [value / total for value in row]


def _softmax_row(scores):
    top = max(scores)
    exps = [math.exp(s - top) for s in scores]
    total = 0.0
    for value in exps:
        total += value
    return [value / total for value in exps]


def _standardize(row, mean, scale):
    return [(row[j] - mean[j]) / scale[j] for j in range(len(row))]


def _tree_walk(node, row):
    while "feature" in node and node["feature"] is not None:
        if row[node["feature"]] <= node["threshold"]:
            node = node["left"]
        else:
            node = node["right"]
    return node["prediction"]


def _mlp_forward(params, row):
    weights = params["weights"]
    biases = params["biases"]
    activation = params["activation"]
    classify = params["task"] == "classification"
    a = row
    last = len(weights) - 1
    for i in range(len(weights)):
        W = weights[i]
        b = biases[i]
        n_out = len(b)
        z = []
        for o in range(n_out):
            total = 0.0
            for j in range(len(a)):
                total += a[j] * W[j][o]
            z.append(total + b[o])
        if i == last:
            a = _softmax_row(z) if classify else z
        elif activation == "relu":
            a = [v if v > 0.0 else 0.0 for v in z]
        elif activation == "tanh":
            a = [math.tanh(v) for v in z]
        elif activation == "logistic":
            a = [1.0 / (1.0 + math.exp(-min(max(v, -30.0), 30.0))) for v in z]
        else:  # identity
            a = z
    return a


class _EstimatorPredictor:
    """Dispatch over the exported estimator families."""

    def __init__(self, params):
        self.params = params
        self.kind = params["kind"]
        self.classes = params.get("classes")
        kind = self.kind
        if kind == "logistic":
            # Column-major copy of coef so each class score is one dot product.
            coef = params["coef"]
            n_classes = len(coef[0])
            self._columns = [
                [coef[j][k] for j in range(len(coef))] for k in range(n_classes)
            ]
        elif kind == "knn":
            train = params["X"]
            self._k = min(int(params["n_neighbors"]), len(train))
            self._knn_distances = self._compile_knn_kernel(
                len(train[0]) if train else 0, params["p"]
            )
        elif kind == "forest":
            self._n_trees = len(params["trees"])

    @staticmethod
    def _compile_knn_kernel(n_features, p):
        """Compile the per-query distance sweep into one flat comprehension.

        A generic python loop over training rows pays interpreter overhead on
        every multiply-add; specialising the dot product to this model's
        feature count (plain ``+``/``*`` chains are left-associative, so the
        accumulation order — and therefore every rounding step — is identical
        to the generic loop) makes exported kNN competitive with numpy on
        single rows.  The generated source depends only on two integers, never
        on artifact-supplied strings.
        """
        d = int(n_features)
        if d == 0:
            return lambda train, *_xs: [0.0] * len(train)
        names = ", ".join("x%d" % j for j in range(d))
        unpack = ", ".join("t%d" % j for j in range(d)) + ","
        if p == 1:
            body = " + ".join("abs(x%d - t%d)" % (j, j) for j in range(d))
            source = "lambda train, %s: [%s for (%s) in train]" % (
                names, body, unpack,
            )
        else:
            dot = " + ".join("x%d * t%d" % (j, j) for j in range(d))
            source = (
                "lambda train, a2, b2s, sqrt, %s: "
                "[sqrt(0.0 if (d2 := (a2 + b) - 2.0 * (%s)) < 0.0 else d2) "
                "for b, (%s) in zip(b2s, train)]" % (names, dot, unpack)
            )
        return eval(source)  # noqa: S307 — source built from two ints above

    # -- per-family probability rows (replicating the live operation order) --
    def predict_proba_row(self, row):
        kind = self.kind
        params = self.params
        if kind == "logistic":
            xs = _standardize(row, params["mean"], params["scale"])
            if params["fit_intercept"]:
                xs = xs + [1.0]
            scores = [_dot(xs, column) for column in self._columns]
            return _normalize_row(_softmax_row(scores))
        if kind == "lda":
            precision = params["precision"]
            n = len(row)
            xp = []
            for i in range(n):
                total = 0.0
                for j in range(n):
                    total += row[j] * precision[j][i]
                xp.append(total)
            scores = [
                (_dot(xp, params["means"][k]) - params["half_terms"][k])
                + params["log_priors"][k]
                for k in range(len(params["means"]))
            ]
            return _normalize_row(_softmax_row(scores))
        if kind == "tree":
            return _normalize_row(_tree_walk(params["tree"], row))
        if kind == "forest":
            votes = [0.0] * len(self.classes)
            for member in params["trees"]:
                proba = _normalize_row(_tree_walk(member["tree"], row))
                local_classes = member["classes"]
                for local_index in range(len(local_classes)):
                    votes[local_classes[local_index]] += proba[local_index]
            votes = [v / self._n_trees for v in votes]
            return _normalize_row(votes)
        if kind == "knn":
            return self._knn_proba(row)
        if kind == "gaussian_nb":
            jll = []
            for k in range(len(self.classes)):
                theta = params["theta"][k]
                var = params["var"][k]
                s = 0.0
                for j in range(len(row)):
                    d = row[j] - theta[j]
                    s += (d * d) / var[j]
                jll.append(
                    params["class_log_prior"][k] + (params["log_norm"][k] - 0.5 * s)
                )
            return _normalize_row(_softmax_row(jll))
        if kind == "multinomial_nb":
            shift = params["shift"]
            shifted = []
            for j in range(len(row)):
                v = row[j] - shift[j]
                shifted.append(v if v > 0.0 else 0.0)
            jll = [
                _dot(shifted, params["feature_log_prob"][k])
                + params["class_log_prior"][k]
                for k in range(len(self.classes))
            ]
            return _normalize_row(_softmax_row(jll))
        if kind == "mlp_classifier":
            xs = _standardize(row, params["mean"], params["scale"])
            return _normalize_row(_mlp_forward(params, xs))
        raise ValueError("unknown estimator kind %r" % (kind,))

    def _knn_proba(self, row):
        params = self.params
        xs = _standardize(row, params["mean"], params["scale"])
        train = params["X"]
        n = len(train)
        if params["p"] == 1:
            distances = self._knn_distances(train, *xs)
        else:
            a2 = 0.0
            for v in xs:
                a2 += v * v
            distances = self._knn_distances(train, a2, params["b2"], math.sqrt, *xs)
        # Tuple sort = order by distance, ties by training index (the
        # interpreter's deterministic stand-in for argpartition boundaries).
        nearest = sorted(zip(distances, range(n)))[: self._k]
        proba = [0.0] * len(self.classes)
        y = params["y"]
        if params["weighting"] == "distance":
            for distance, i in nearest:
                proba[y[i]] += 1.0 / (distance + 1e-8)
        else:
            for _, i in nearest:
                proba[y[i]] += 1.0
        return _normalize_row(_normalize_row(proba))

    def predict_row(self, row):
        return self.classes[_argmax(self.predict_proba_row(row))]

    # -- regression (linear-output MLP) --------------------------------------
    def predict_values_row(self, row):
        params = self.params
        xs = _standardize(row, params["mean"], params["scale"])
        out = _mlp_forward(params, xs)
        return out[0] if params["n_outputs"] == 1 else out


class _PipelineTransformer:
    """Replays a fitted Pipeline's imputer → scaler → encoder transform."""

    def __init__(self, params):
        self.numeric_columns = params["numeric_columns"]
        self.categorical_columns = params["categorical_columns"]
        self.imputer = params.get("imputer")
        self.scaler = params.get("scaler")
        encoder = params.get("encoder")
        self._encoder_columns = []
        if encoder is not None:
            for categories in encoder["categories"]:
                index = {}
                for position, category in enumerate(categories):
                    index[category] = position
                rare_position = index.get(RARE_CATEGORY)
                self._encoder_columns.append((index, rare_position, len(categories)))

    def transform_row(self, row):
        scaler = self.scaler
        imputer = self.imputer
        values = []
        for slot, j in enumerate(self.numeric_columns):
            raw = row[j]
            v = _NAN if _is_missing(raw) else float(raw)
            if imputer is not None and v != v:
                v = imputer["statistics"][slot]
            if scaler is not None:
                if scaler["kind"] == "standard":
                    v = (v - scaler["center"][slot]) / scaler["scale"][slot]
                else:  # minmax
                    v = (v - scaler["min"][slot]) / scaler["range"][slot]
            values.append(v)
        for slot, j in enumerate(self.categorical_columns):
            index, rare_position, width = self._encoder_columns[slot]
            value = row[j]
            if _is_missing(value):
                value = MISSING_CATEGORY
            position = index.get(value, rare_position)
            one_hot = [0.0] * width
            if position is not None:
                one_hot[position] = 1.0
            values.extend(one_hot)
        return values


class ExportedModel:
    """A dependency-free predictor reconstructed from an export document.

    ``predict(rows)`` takes a list of rows — raw attribute rows for pipeline
    artifacts (numbers, ``None``/NaN for missing, strings for categorical
    cells), dense numeric rows for bare estimators, meta-feature rows for
    decision-model artifacts — and returns a list of predictions.
    """

    def __init__(self, document):
        if document.get("format") != FORMAT:
            raise ValueError(
                "not a %s document (format=%r)" % (FORMAT, document.get("format"))
            )
        if document.get("version") != FORMAT_VERSION:
            raise ValueError(
                "unsupported %s version %r" % (FORMAT, document.get("version"))
            )
        self.document = document
        self.kind = document["kind"]
        self._transformer = None
        self._predictor = None
        self.labels = None
        if self.kind == "pipeline":
            self._transformer = _PipelineTransformer(document["pipeline"])
            self._predictor = _EstimatorPredictor(document["estimator"])
        elif self.kind == "estimator":
            self._predictor = _EstimatorPredictor(document["estimator"])
        elif self.kind == "decision_model":
            self._predictor = _EstimatorPredictor(document["regressor"])
            self.labels = document["labels"]
        else:
            raise ValueError("unknown artifact kind %r" % (self.kind,))

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_json(cls, text):
        return cls(json.loads(text))

    @classmethod
    def from_file(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls(json.load(handle))

    # -- prediction -----------------------------------------------------------
    def _feature_rows(self, rows):
        if self.kind == "pipeline":
            return [self._transformer.transform_row(list(row)) for row in rows]
        return [[float(v) for v in row] for row in rows]

    def predict(self, rows):
        features = self._feature_rows(rows)
        if self.kind == "decision_model":
            regressed = [self._predictor.predict_values_row(row) for row in features]
            return [self.labels[_argmax(scores)] for scores in regressed]
        return [self._predictor.predict_row(row) for row in features]

    def predict_proba(self, rows):
        if self.kind == "decision_model":
            raise ValueError("decision-model artifacts predict scores, not probabilities")
        features = self._feature_rows(rows)
        return [self._predictor.predict_proba_row(row) for row in features]

    def scores(self, rows):
        """Decision-model artifacts: per-row ``{label: score}`` dictionaries."""
        if self.kind != "decision_model":
            raise ValueError("scores() is only available on decision-model artifacts")
        features = self._feature_rows(rows)
        out = []
        for row in features:
            values = self._predictor.predict_values_row(row)
            out.append({self.labels[i]: values[i] for i in range(len(self.labels))})
        return out

    def transform(self, rows):
        """Pipeline artifacts: the dense feature rows the estimator receives."""
        if self._transformer is None:
            raise ValueError("transform() is only available on pipeline artifacts")
        return [self._transformer.transform_row(list(row)) for row in rows]

    def __repr__(self):
        return "ExportedModel(kind=%r)" % (self.kind,)
