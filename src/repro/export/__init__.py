"""repro.export — compile tuned pipelines to dependency-free predict artifacts.

The sklearn-porter direction from the ROADMAP: a fitted
:class:`~repro.learners.pipeline.Pipeline` (or bare estimator, or the DMD
decision model behind a registry version) compiles into

* a JSON weights document + the tiny numpy-free
  :class:`~repro.export.interpreter.ExportedModel` interpreter, or
* one generated pure-python source file with the parameters inlined,

with predictions byte-identical to the live model.
"""

from .compiler import (
    ExportError,
    compile_model,
    export_decision_model,
    export_document,
    exportable_algorithms,
    generate_source,
    load_artifact,
    save_artifact,
    write_source,
)
from .interpreter import FORMAT, FORMAT_VERSION, ExportedModel

__all__ = [
    "ExportError",
    "ExportedModel",
    "FORMAT",
    "FORMAT_VERSION",
    "compile_model",
    "export_decision_model",
    "export_document",
    "exportable_algorithms",
    "generate_source",
    "load_artifact",
    "save_artifact",
    "write_source",
]
