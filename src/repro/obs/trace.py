"""Spans, the tracer, and context propagation across threads/processes/HTTP.

A :class:`Span` is one timed unit of work: it carries a ``trace_id`` shared
by every span of one logical operation, its own ``span_id``, and the
``parent_id`` linking it into the trace tree.  Entering a span makes it the
*active* span of the current execution context (a :mod:`contextvars`
variable, so concurrent server threads never see each other's spans);
exiting records its duration and writes one ``span`` event to the journal.

Propagation — how a child execution context inherits the caller's trace:

========  ==========================================================
threads   executors do **not** inherit contextvars, so call sites
          capture :func:`current_context` and re-establish it in the
          worker with :func:`attach` (the engine's traced wrapper).
process   ``propagation_env()`` snapshots the obs env vars plus a
          ``REPRO_TRACE`` header of the active span; forked/spawned
          children pick it up as the *ambient* parent of their first
          root span.
HTTP      the same header travels as ``X-Repro-Trace:
          <trace_id>-<span_id>``; servers :func:`attach_header` it so
          their request spans parent under the remote client's span.
========  ==========================================================

The disabled path is a shared :data:`NOOP_SPAN` singleton: ``tracer.span``
costs one attribute check and no allocation, so instrumented hot paths stay
near-free when tracing is off (benchmarked in ``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, NamedTuple

from .events import EventJournal

__all__ = [
    "SpanContext",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "TRACE_HEADER",
    "ENV_TRACE",
    "current_context",
    "attach",
    "parse_header",
    "new_id",
]

TRACE_HEADER = "X-Repro-Trace"
ENV_TRACE = "REPRO_TRACE"

_ACTIVE: ContextVar["SpanContext | None"] = ContextVar("repro_obs_active", default=None)
_ACTIVE_SPAN: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


def new_id() -> str:
    return os.urandom(8).hex()


class SpanContext(NamedTuple):
    """The propagatable identity of a span: which trace, which parent."""

    trace_id: str
    span_id: str

    def header(self) -> str:
        return f"{self.trace_id}-{self.span_id}"


def parse_header(value: str | None) -> SpanContext | None:
    """Parse an ``X-Repro-Trace`` / ``REPRO_TRACE`` value; None on junk."""
    if not value or not isinstance(value, str):
        return None
    trace_id, sep, span_id = value.strip().partition("-")
    if not sep or not trace_id or not span_id:
        return None
    return SpanContext(trace_id, span_id)


def current_context() -> SpanContext | None:
    """The active span's context in this thread/task, if any."""
    return _ACTIVE.get()


def current_span() -> "Span | None":
    """The active real span in this thread/task (None under NOOP or no span)."""
    return _ACTIVE_SPAN.get()


@contextmanager
def attach(context: SpanContext | None):
    """Make ``context`` the active parent for spans opened inside the block.

    ``attach(None)`` is a no-op block, so call sites can attach an optional
    incoming header unconditionally.
    """
    if context is None:
        yield
        return
    token = _ACTIVE.set(context)
    span_token = _ACTIVE_SPAN.set(None)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
        _ACTIVE_SPAN.reset(span_token)


class Span:
    """One timed, attributed unit of work; records itself on exit."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "start_ts",
        "duration",
        "_journal",
        "_start_mono",
        "_token",
        "_span_token",
    )

    def __init__(
        self,
        journal: EventJournal,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start_ts = 0.0
        self.duration = 0.0
        self._journal = journal
        self._start_mono = 0.0
        self._token = None
        self._span_token = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_ts = time.time()
        self._start_mono = time.monotonic()
        self._token = _ACTIVE.set(self.context)
        self._span_token = _ACTIVE_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.monotonic() - self._start_mono
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("exc_class", exc_type.__name__)
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if self._span_token is not None:
            _ACTIVE_SPAN.reset(self._span_token)
            self._span_token = None
        self._journal.emit(
            {
                "type": "span",
                "ts": self.start_ts,
                "pid": os.getpid(),
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "duration": round(self.duration, 6),
                "status": self.status,
                "attrs": self.attributes,
            }
        )
        return False


class NoopSpan:
    """Shared do-nothing span for the disabled path (no allocation per call)."""

    __slots__ = ()

    @property
    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class Tracer:
    """Span factory + event sink bound to one journal directory.

    A disabled tracer (``enabled=False`` or no journal) hands out
    :data:`NOOP_SPAN` and drops events — instrumented code needs no
    branching of its own, though hot loops may still guard on
    ``tracer.enabled`` to skip argument building.
    """

    __slots__ = ("journal", "enabled", "profile")

    def __init__(
        self,
        journal: EventJournal | None = None,
        enabled: bool = False,
        profile: bool = False,
    ) -> None:
        self.journal = journal
        self.enabled = bool(enabled) and journal is not None
        self.profile = bool(profile)

    @property
    def journal_dir(self):
        return self.journal.directory if self.journal is not None else None

    def span(
        self,
        name: str,
        parent: SpanContext | Span | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span | NoopSpan:
        """A new span under ``parent`` > the active span > the ambient env
        context (``REPRO_TRACE``, set for forked fleet/pool workers) > a
        fresh root."""
        if not self.enabled:
            return NOOP_SPAN
        if isinstance(parent, Span):
            context = parent.context
        else:
            context = parent
        if context is None:
            context = _ACTIVE.get()
        if context is None:
            context = parse_header(os.environ.get(ENV_TRACE))
        if context is None:
            return Span(self.journal, name, new_id(), None, attrs)
        return Span(self.journal, name, context.trace_id, context.span_id, attrs)

    def emit(self, event_type: str, **fields: Any) -> None:
        """Write one typed event (no-op when disabled); never raises."""
        if not self.enabled:
            return
        context = _ACTIVE.get()
        event: dict[str, Any] = {
            "type": event_type,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        if context is not None:
            event["trace_id"] = context.trace_id
            event["span_id"] = context.span_id
        event.update(fields)
        self.journal.emit(event)
