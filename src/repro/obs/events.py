"""Structured JSONL event journal — the durable half of the obs subsystem.

Every traced span, trial, claim, store write and contained error becomes one
JSON object on one line of a per-process journal file.  The design mirrors
the result store's corruption discipline:

* **Per-process files.**  Each writer appends to ``events-<pid>.jsonl`` in
  the journal directory, so concurrent processes (fleet workers, pre-forked
  pool workers) never interleave bytes.  A forked child detects the pid
  change on its first emit and switches to its own file.
* **Atomic appends.**  Lines are written with a single ``os.write`` on an
  ``O_APPEND`` descriptor — the strongest same-file atomicity POSIX offers —
  so even two threads racing one file produce whole lines.
* **Bounded size.**  When the active file would exceed ``max_bytes`` it is
  rotated to ``events-<pid>.r<k>.jsonl`` and a fresh file is started; the
  reader merges rotations transparently.
* **Corrupt-line tolerance.**  :func:`read_events` skips truncated or
  garbage lines instead of raising, and merges every journal file in the
  directory sorted by timestamp — the same "bad data degrades, never
  breaks" contract as :class:`~repro.execution.store.ResultStore`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = ["EventJournal", "read_events", "count_by_type", "JOURNAL_GLOB"]

JOURNAL_GLOB = "events-*.jsonl"
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class EventJournal:
    """Append-only, rotation-safe JSONL sink for one process's events."""

    def __init__(self, directory: str | Path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.directory = Path(directory)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._pid: int | None = None
        self._size = 0
        self._rotations = 0

    # -- writing -----------------------------------------------------------------------
    def path_for_pid(self, pid: int) -> Path:
        return self.directory / f"events-{pid}.jsonl"

    def _open(self, pid: int) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for_pid(pid)
        self._fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._pid = pid
        self._size = os.fstat(self._fd).st_size
        self._rotations = 0

    def _rotate(self, pid: int) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._rotations += 1
        target = self.directory / f"events-{pid}.r{self._rotations}.jsonl"
        try:
            os.replace(self.path_for_pid(pid), target)
        except OSError:
            pass  # someone removed the file; just start a fresh one
        path = self.path_for_pid(pid)
        self._fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._size = 0

    def emit(self, event: dict[str, Any]) -> bool:
        """Append one event; returns False (never raises) when the write fails."""
        try:
            line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
            data = line.encode("utf-8")
            pid = os.getpid()
            with self._lock:
                if self._fd is None or self._pid != pid:
                    # First write, or we are a fork of the opener: a child
                    # sharing the parent's descriptor would interleave into
                    # the parent's file, so switch to our own.
                    if self._fd is not None and self._pid == pid:
                        os.close(self._fd)
                    self._fd = None
                    self._open(pid)
                elif self._size + len(data) > self.max_bytes and self._size > 0:
                    self._rotate(pid)
                os.write(self._fd, data)
                self._size += len(data)
            return True
        except (OSError, ValueError, TypeError):
            return False

    def close(self) -> None:
        with self._lock:
            if self._fd is not None and self._pid == os.getpid():
                try:
                    os.close(self._fd)
                except OSError:
                    pass
            self._fd = None
            self._pid = None


def _iter_lines(path: Path) -> Iterable[str]:
    try:
        with path.open("r", encoding="utf-8", errors="replace") as handle:
            yield from handle
    except OSError:
        return


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Merged, timestamp-sorted events from a journal directory or one file.

    Corrupt lines (truncated writes, garbage bytes, non-object JSON) are
    skipped silently; unreadable files contribute nothing.  Events missing a
    numeric ``ts`` sort first, preserving file order among themselves.
    """
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob(JOURNAL_GLOB))
    else:
        files = [path]
    events: list[dict[str, Any]] = []
    for file in files:
        for line in _iter_lines(file):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
    events.sort(key=_sort_key)
    return events


def _sort_key(event: dict[str, Any]) -> float:
    ts = event.get("ts")
    return float(ts) if isinstance(ts, (int, float)) else 0.0


def count_by_type(events: Iterable[dict[str, Any]]) -> dict[str, int]:
    """``{event_type: count}`` over ``events`` (the /metrics ``events`` section)."""
    counts: dict[str, int] = {}
    for event in events:
        kind = str(event.get("type", "(untyped)"))
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))


def now() -> float:
    """Wall-clock timestamp used for every event (one place to stub in tests)."""
    return time.time()
