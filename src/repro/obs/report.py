"""Offline aggregation over an event journal — ``python -m repro.obs report``.

The journal is flat (one JSON object per line, many processes interleaved);
this module reconstructs structure from it:

* **Trace trees** — spans reassembled by ``trace_id``/``parent_id``,
  tolerant of orphans (a parent whose span event was lost promotes its
  children to roots rather than dropping them).
* **Critical path** — from the root, repeatedly descend into the
  largest-duration child: the chain that bounded the wall time.
* **Coverage** — how much of the root span's wall time is accounted for by
  its children (union of child intervals, clipped to the root).
* **Per-phase rollup** — total/self time by span name.
* **Fleet timeline** — per-worker lanes (spans attributed ``worker=wN`` by
  the coordinator, falling back to one lane per pid) as ASCII bars.
* **Crash taxonomy** — exception classes from crashed trials and contained
  ``error`` events.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any, Iterable

from .events import count_by_type, read_events

__all__ = [
    "SpanNode",
    "TraceTree",
    "build_traces",
    "phase_rollup",
    "slowest_spans",
    "crash_taxonomy",
    "trial_summary",
    "worker_lanes",
    "span_tree_payload",
    "render_report",
    "main",
]


class SpanNode:
    """One reconstructed span and its children."""

    __slots__ = (
        "span_id", "parent_id", "trace_id", "name", "start",
        "duration", "status", "attrs", "pid", "children",
    )

    def __init__(self, event: dict[str, Any]) -> None:
        self.span_id = str(event.get("span_id", ""))
        self.parent_id = event.get("parent_id")
        self.trace_id = str(event.get("trace_id", ""))
        self.name = str(event.get("name", "(unnamed)"))
        self.start = float(event.get("ts", 0.0) or 0.0)
        self.duration = float(event.get("duration", 0.0) or 0.0)
        self.status = str(event.get("status", "ok"))
        attrs = event.get("attrs")
        self.attrs = attrs if isinstance(attrs, dict) else {}
        self.pid = event.get("pid")
        self.children: list[SpanNode] = []

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def self_time(self) -> float:
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return total


class TraceTree:
    """All spans of one trace, linked parent → children."""

    def __init__(self, trace_id: str, spans: list[SpanNode]) -> None:
        self.trace_id = trace_id
        self.spans = {span.span_id: span for span in spans}
        self.roots: list[SpanNode] = []
        for span in spans:
            parent = self.spans.get(span.parent_id) if span.parent_id else None
            if parent is not None and parent is not span:
                parent.children.append(span)
            else:
                self.roots.append(span)
        for span in spans:
            span.children.sort(key=lambda s: s.start)
        self.roots.sort(key=lambda s: s.start)

    @property
    def root(self) -> SpanNode | None:
        """The dominant root: the longest top-level span of the trace."""
        return max(self.roots, key=lambda s: s.duration, default=None)

    def walk(self) -> Iterable[SpanNode]:
        for root in self.roots:
            yield from root.walk()

    def coverage(self) -> float:
        """Fraction of the root's wall time its children account for."""
        root = self.root
        if root is None or root.duration <= 0.0:
            return 0.0
        clipped = [
            (max(c.start, root.start), min(c.end, root.end))
            for c in root.children
            if min(c.end, root.end) > max(c.start, root.start)
        ]
        return min(1.0, _union_seconds(clipped) / root.duration)

    def critical_path(self) -> list[SpanNode]:
        """Root → largest child → … — the chain that bounded the wall time."""
        root = self.root
        if root is None:
            return []
        path = [root]
        node = root
        while node.children:
            node = max(node.children, key=lambda s: s.duration)
            path.append(node)
        return path


def build_traces(events: list[dict[str, Any]]) -> dict[str, TraceTree]:
    """Reassemble every trace present in ``events`` (span events only)."""
    by_trace: dict[str, list[SpanNode]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        node = SpanNode(event)
        if node.span_id and node.trace_id:
            by_trace.setdefault(node.trace_id, []).append(node)
    return {
        trace_id: TraceTree(trace_id, spans) for trace_id, spans in by_trace.items()
    }


def phase_rollup(spans: Iterable[SpanNode]) -> list[dict[str, Any]]:
    """Per-span-name totals, largest total time first."""
    rollup: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = rollup.setdefault(
            span.name, {"count": 0, "total": 0.0, "self": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["total"] += span.duration
        entry["self"] += span.self_time
        if span.status != "ok":
            entry["errors"] += 1
    return [
        {"name": name, **values}
        for name, values in sorted(
            rollup.items(), key=lambda item: -item[1]["total"]
        )
    ]


def slowest_spans(spans: Iterable[SpanNode], k: int = 10) -> list[SpanNode]:
    return sorted(spans, key=lambda s: -s.duration)[: max(0, k)]


def crash_taxonomy(events: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """Exception-class counts from crashed trials and contained errors."""
    trials: dict[str, int] = {}
    errors: dict[str, int] = {}
    for event in events:
        kind = event.get("type")
        if kind == "trial_finish" and event.get("status") == "crashed":
            cls = str(event.get("exc_class") or "(unknown)")
            trials[cls] = trials.get(cls, 0) + 1
        elif kind == "error":
            cls = str(event.get("exc_class") or "(unknown)")
            errors[cls] = errors.get(cls, 0) + 1
    return {
        "crashed_trials": dict(sorted(trials.items(), key=lambda kv: -kv[1])),
        "contained_errors": dict(sorted(errors.items(), key=lambda kv: -kv[1])),
    }


def trial_summary(events: list[dict[str, Any]]) -> dict[str, int]:
    """Trial counts by status (``ok`` / ``cached`` / ``crashed``)."""
    summary = {"total": 0, "ok": 0, "cached": 0, "crashed": 0}
    for event in events:
        if event.get("type") != "trial_finish":
            continue
        summary["total"] += 1
        status = str(event.get("status", "ok"))
        summary[status] = summary.get(status, 0) + 1
    return summary


def worker_lanes(tree: TraceTree) -> dict[str, list[SpanNode]]:
    """Spans grouped into per-worker lanes (``worker`` attr, else pid)."""
    lanes: dict[str, list[SpanNode]] = {}
    for span in tree.walk():
        lane = span.attrs.get("worker")
        if lane is None:
            lane = f"pid-{span.pid}" if span.pid is not None else "(unknown)"
        lanes.setdefault(str(lane), []).append(span)
    for members in lanes.values():
        members.sort(key=lambda s: s.start)
    return dict(sorted(lanes.items()))


def span_tree_payload(node: SpanNode) -> dict[str, Any]:
    """JSON-safe nested view of one span subtree (the /trace/<id> body)."""
    return {
        "name": node.name,
        "span_id": node.span_id,
        "parent_id": node.parent_id,
        "start": node.start,
        "duration": node.duration,
        "status": node.status,
        "attrs": dict(node.attrs),
        "children": [span_tree_payload(child) for child in node.children],
    }


# -- text rendering --------------------------------------------------------------------


def _lane_bar(spans: list[SpanNode], t0: float, t1: float, width: int = 48) -> str:
    window = max(t1 - t0, 1e-9)
    cells = [" "] * width
    for span in spans:
        lo = int((max(span.start, t0) - t0) / window * width)
        hi = int((min(span.end, t1) - t0) / window * width)
        for i in range(max(lo, 0), min(max(hi, lo + 1), width)):
            cells[i] = "#" if span.status == "ok" else "!"
    return "".join(cells)


def _render_tree(node: SpanNode, lines: list[str], depth: int, max_depth: int) -> None:
    attrs = ""
    if node.attrs:
        shown = ", ".join(f"{k}={v}" for k, v in list(node.attrs.items())[:4])
        attrs = f"  [{shown}]"
    marker = "" if node.status == "ok" else f" !{node.status}"
    lines.append(f"{'  ' * depth}{node.name}  {node.duration * 1000.0:.1f}ms{marker}{attrs}")
    if depth + 1 >= max_depth:
        if node.children:
            lines.append(f"{'  ' * (depth + 1)}… {len(node.children)} children")
        return
    for child in node.children:
        _render_tree(child, lines, depth + 1, max_depth)


def render_report(
    path: str | Path, trace_id: str | None = None, max_depth: int = 4
) -> str:
    """The full text report over a journal directory (or one journal file)."""
    events = read_events(path)
    lines: list[str] = []
    lines.append(f"journal: {path} ({len(events)} events)")
    counts = count_by_type(events)
    if counts:
        lines.append("event counts: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    summary = trial_summary(events)
    if summary["total"]:
        lines.append(
            f"trials: {summary['total']} total, {summary['ok']} ok, "
            f"{summary['cached']} cached, {summary['crashed']} crashed"
        )
    traces = build_traces(events)
    if not traces:
        lines.append("no spans recorded (tracing disabled?)")
        return "\n".join(lines)
    if trace_id is None:
        tree = max(
            traces.values(),
            key=lambda t: t.root.duration if t.root is not None else 0.0,
        )
    else:
        if trace_id not in traces:
            raise KeyError(f"trace {trace_id!r} not present in {path}")
        tree = traces[trace_id]
    root = tree.root
    lines.append(f"traces: {len(traces)}; showing {tree.trace_id}")
    if root is not None:
        lines.append(
            f"root: {root.name}  {root.duration * 1000.0:.1f}ms  "
            f"coverage={tree.coverage() * 100.0:.1f}%"
        )
        lines.append("")
        lines.append("trace tree:")
        for top in tree.roots:
            _render_tree(top, lines, 1, max_depth)
        lines.append("")
        lines.append("critical path:")
        for node in tree.critical_path():
            share = node.duration / root.duration * 100.0 if root.duration else 0.0
            lines.append(f"  {node.name}  {node.duration * 1000.0:.1f}ms  ({share:.1f}%)")
        lanes = worker_lanes(tree)
        if len(lanes) > 1:
            lines.append("")
            lines.append(f"fleet timeline ({len(lanes)} lanes):")
            for lane, members in lanes.items():
                bar = _lane_bar(members, root.start, root.end)
                lines.append(f"  {lane:<10} |{bar}| {len(members)} spans")
    lines.append("")
    lines.append("phase rollup:")
    for entry in phase_rollup(tree.walk())[:12]:
        lines.append(
            f"  {entry['name']:<28} n={entry['count']:<5} "
            f"total={entry['total'] * 1000.0:.1f}ms self={entry['self'] * 1000.0:.1f}ms"
            + (f" errors={entry['errors']}" if entry["errors"] else "")
        )
    lines.append("")
    lines.append("slowest spans:")
    for node in slowest_spans(tree.walk(), 8):
        lines.append(f"  {node.name:<28} {node.duration * 1000.0:.1f}ms  [{node.span_id}]")
    taxonomy = crash_taxonomy(events)
    if taxonomy["crashed_trials"] or taxonomy["contained_errors"]:
        lines.append("")
        lines.append("crash taxonomy:")
        for cls, n in taxonomy["crashed_trials"].items():
            lines.append(f"  trial crash  {cls:<24} x{n}")
        for cls, n in taxonomy["contained_errors"].items():
            lines.append(f"  contained    {cls:<24} x{n}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Offline reports over a repro.obs event journal.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render the aggregate text report")
    report.add_argument("path", help="journal directory (or one events-*.jsonl file)")
    report.add_argument("--trace", default=None, help="trace id to focus on")
    report.add_argument("--max-depth", type=int, default=4, help="tree render depth")
    args = parser.parse_args(argv)
    if not Path(args.path).exists():
        parser.error(f"no such journal: {args.path}")
    try:
        print(render_report(args.path, trace_id=args.trace, max_depth=args.max_depth))
    except KeyError as exc:
        parser.error(str(exc))
    return 0
