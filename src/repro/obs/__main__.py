"""CLI entry point: ``python -m repro.obs report <journal-or-dir>``."""

import sys

from .report import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
