"""Opt-in timing and cProfile hooks for the hot paths.

:func:`profiled` wraps a named hot block (the CV fold loop, the decision
model's ``scores_matrix``, store ``image``/``put``).  With tracing enabled it
times the block and attaches ``<name>_seconds`` to the active span; with
``REPRO_OBS_PROFILE=1`` it additionally runs the block under :mod:`cProfile`
and emits a ``profile`` event carrying the top cumulative-time functions.
With tracing disabled the wrapper is a bare ``yield`` — no timers, no
attribute writes — so instrumented code pays nothing by default.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager

__all__ = ["profiled", "top_functions"]


def top_functions(profile: cProfile.Profile, k: int = 5) -> list[str]:
    """The ``k`` largest cumulative-time entries of a finished profile."""
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer).sort_stats("cumulative")
    out: list[str] = []
    for func in stats.fcn_list[:k]:  # (file, line, name) in sorted order
        cc, nc, tt, ct, _ = stats.stats[func]
        file, line, name = func
        out.append(f"{name} ({file}:{line}) calls={nc} cum={ct:.4f}s")
    return out


@contextmanager
def profiled(name: str):
    """Time (and optionally cProfile) a named hot block under the tracer."""
    from . import current_span, tracer  # resolve the live process tracer lazily

    tr = tracer()
    if not tr.enabled:
        yield
        return
    profile = None
    if tr.profile:
        profile = cProfile.Profile()
        profile.enable()
    start = time.monotonic()
    try:
        yield
    finally:
        elapsed = time.monotonic() - start
        if profile is not None:
            profile.disable()
        span = current_span()
        if span is not None:
            key = f"{name}_seconds"
            span.set_attribute(key, round(span.attributes.get(key, 0.0) + elapsed, 6))
        if profile is not None:
            tr.emit(
                "profile",
                name=name,
                seconds=round(elapsed, 6),
                top=top_functions(profile),
            )
