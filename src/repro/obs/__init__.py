"""End-to-end tracing and structured telemetry for the whole stack.

``repro.obs`` is the stdlib-only observability subsystem: spans with
trace/parent identity that survive thread pools, process forks and HTTP hops
(:mod:`~repro.obs.trace`), a rotation-safe JSONL event journal with typed
events for trials, claims, store writes, jobs and contained errors
(:mod:`~repro.obs.events`), opt-in timer/cProfile hooks on the hot paths
(:mod:`~repro.obs.profiler`), and an offline report —
``python -m repro.obs report <journal-or-dir>`` — that reconstructs trace
trees, the critical path, per-phase rollups, crash taxonomies and per-worker
fleet lanes (:mod:`~repro.obs.report`).

Tracing is **off by default** and costs near zero when off: every call site
goes through the module-level helpers here, which resolve to a no-op tracer
unless the environment opts in.  Enable it with::

    import repro.obs as obs
    obs.configure("/tmp/obs-journal")       # sets REPRO_OBS_DIR/_ENABLED
    with obs.span("my-build") as root:
        ...                                  # everything beneath is traced

Configuration travels through environment variables (``REPRO_OBS_DIR``,
``REPRO_OBS_ENABLED``, ``REPRO_OBS_PROFILE``, ``REPRO_TRACE``) so forked
fleet workers and pre-forked pool workers inherit it with no plumbing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from .events import EventJournal, count_by_type, read_events
from .trace import (
    ENV_TRACE,
    NOOP_SPAN,
    TRACE_HEADER,
    NoopSpan,
    Span,
    SpanContext,
    Tracer,
    attach,
    current_context,
    current_span,
    parse_header,
)

__all__ = [
    "ENV_DIR",
    "ENV_ENABLED",
    "ENV_PROFILE",
    "ENV_TRACE",
    "TRACE_HEADER",
    "EventJournal",
    "NoopSpan",
    "NOOP_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "attach",
    "attach_header",
    "configure",
    "current_context",
    "current_span",
    "disable",
    "emit",
    "enabled",
    "error_event",
    "event_counts",
    "journal_dir",
    "parse_header",
    "propagation_env",
    "read_events",
    "span",
    "trace_header",
    "tracer",
]

ENV_DIR = "REPRO_OBS_DIR"
ENV_ENABLED = "REPRO_OBS_ENABLED"
ENV_PROFILE = "REPRO_OBS_PROFILE"

_TRACER: Tracer | None = None
_TRACER_KEY: tuple | None = None


def tracer() -> Tracer:
    """The process-wide tracer, (re)built whenever the obs env vars change.

    Env-keyed caching makes ``configure``/``disable`` take effect everywhere
    immediately, and lets forked workers that inherited the env lazily build
    their own journal handle on first use.
    """
    global _TRACER, _TRACER_KEY
    key = (
        os.environ.get(ENV_DIR),
        os.environ.get(ENV_ENABLED),
        os.environ.get(ENV_PROFILE),
    )
    if _TRACER is None or key != _TRACER_KEY:
        directory, enabled_flag, profile_flag = key
        journal = EventJournal(directory) if directory else None
        _TRACER = Tracer(
            journal=journal,
            enabled=enabled_flag == "1" and directory is not None,
            profile=profile_flag == "1",
        )
        _TRACER_KEY = key
    return _TRACER


def configure(
    journal_dir: str | Path, *, enabled: bool = True, profile: bool = False
) -> Tracer:
    """Turn tracing on (or off) for this process and every child it forks."""
    os.environ[ENV_DIR] = str(journal_dir)
    os.environ[ENV_ENABLED] = "1" if enabled else "0"
    if profile:
        os.environ[ENV_PROFILE] = "1"
    else:
        os.environ.pop(ENV_PROFILE, None)
    return tracer()


def disable() -> None:
    """Fully reset obs: tracing off, env cleared (test isolation helper)."""
    global _TRACER, _TRACER_KEY
    for name in (ENV_DIR, ENV_ENABLED, ENV_PROFILE, ENV_TRACE):
        os.environ.pop(name, None)
    _TRACER = None
    _TRACER_KEY = None


def enabled() -> bool:
    return tracer().enabled


def journal_dir() -> Path | None:
    return tracer().journal_dir


def span(
    name: str,
    parent: SpanContext | Span | None = None,
    attrs: dict[str, Any] | None = None,
):
    """Open a span on the process tracer (NOOP when tracing is off)."""
    return tracer().span(name, parent=parent, attrs=attrs)


def emit(event_type: str, **fields: Any) -> None:
    """Write one typed event through the process tracer (no-op when off)."""
    tracer().emit(event_type, **fields)


def error_event(site: str, exc: BaseException) -> None:
    """Record a contained exception as a structured ``error`` event.

    This is the satellite contract for every ``except Exception`` swallow
    site in the codebase: containment stays, but the failure becomes
    countable.  Never raises — not even during interpreter teardown.
    """
    try:
        tr = tracer()
        if not tr.enabled:
            return
        tr.emit(
            "error",
            site=site,
            exc_class=type(exc).__name__,
            message=str(exc)[:200],
        )
    except Exception:
        pass


def trace_header() -> str | None:
    """``X-Repro-Trace`` value for the active span, or None outside a trace."""
    context = current_context()
    return context.header() if context is not None else None


def attach_header(value: str | None):
    """Attach an incoming trace header (server side of an HTTP hop)."""
    return attach(parse_header(value))


def propagation_env() -> dict[str, str]:
    """Env vars that extend the current trace into a spawned process."""
    env: dict[str, str] = {}
    for name in (ENV_DIR, ENV_ENABLED, ENV_PROFILE):
        value = os.environ.get(name)
        if value is not None:
            env[name] = value
    header = trace_header()
    if header is not None:
        env[ENV_TRACE] = header
    return env


def event_counts(path: str | Path | None = None) -> dict[str, int]:
    """Counts by event type over a journal (defaults to the active one)."""
    target = Path(path) if path is not None else journal_dir()
    if target is None:
        return {}
    return count_by_type(read_events(target))
