"""Synthetic classification dataset generators.

The paper draws its 69 knowledge datasets and 21 test datasets (Table XI) from
UCI/OpenML; this environment has no network access, so the generators below
produce datasets whose *shape* (records, numeric/categorical attribute counts,
class counts) can be pinned to the published values while their *difficulty
profile* varies across several concept families.  Different families favour
different classifier types, which is exactly the heterogeneity the algorithm-
selection machinery needs to be meaningful.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .task import TaskType

__all__ = [
    "make_gaussian_clusters",
    "make_hypercube_rules",
    "make_nonlinear_manifold",
    "make_sparse_prototypes",
    "make_noisy_linear",
    "make_categorical_rules",
    "make_dataset",
    "CONCEPT_FAMILIES",
    "make_linear_response",
    "make_friedman",
    "make_piecewise_response",
    "make_regression_dataset",
    "REGRESSION_FAMILIES",
    "corrupt",
]


def _attach_categorical(
    rng: np.random.Generator,
    latent: np.ndarray,
    y: np.ndarray,
    n_categorical: int,
    n_classes: int,
    informative_fraction: float = 0.6,
) -> np.ndarray:
    """Derive categorical attributes, some correlated with the label, some noise."""
    n = latent.shape[0]
    if n_categorical == 0:
        return np.zeros((n, 0), dtype=object)
    columns: list[np.ndarray] = []
    for j in range(n_categorical):
        cardinality = int(rng.integers(2, 7))
        if rng.random() < informative_fraction:
            # Bin an informative latent direction, then relabel with class-dependent shift.
            direction = latent @ rng.normal(size=latent.shape[1])
            ranks = np.argsort(np.argsort(direction))
            base = (ranks * cardinality // n).astype(int)
            shift = (y * int(rng.integers(0, 2))) % cardinality
            values = (base + shift) % cardinality
        else:
            values = rng.integers(0, cardinality, size=n)
        columns.append(np.array([f"c{j}_v{v}" for v in values], dtype=object))
    return np.column_stack(columns)


def _class_sizes(rng: np.random.Generator, n_records: int, n_classes: int, imbalance: float) -> np.ndarray:
    """Split ``n_records`` into class sizes with a controllable imbalance."""
    weights = rng.dirichlet(np.full(n_classes, max(0.2, 5.0 * (1.0 - imbalance))))
    sizes = np.maximum(2, np.round(weights * n_records).astype(int))
    while sizes.sum() > n_records:
        sizes[np.argmax(sizes)] -= 1
    while sizes.sum() < n_records:
        sizes[np.argmin(sizes)] += 1
    return sizes


def make_gaussian_clusters(
    name: str,
    n_records: int = 300,
    n_numeric: int = 8,
    n_categorical: int = 0,
    n_classes: int = 3,
    class_separation: float = 2.0,
    noise: float = 1.0,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Gaussian blobs — favours LDA / naive Bayes / logistic models."""
    rng = np.random.default_rng(random_state)
    sizes = _class_sizes(rng, n_records, n_classes, imbalance)
    latent_dim = max(2, n_numeric)
    X_parts, y_parts = [], []
    for k, size in enumerate(sizes):
        center = rng.normal(scale=class_separation, size=latent_dim)
        X_parts.append(center + rng.normal(scale=noise, size=(size, latent_dim)))
        y_parts.append(np.full(size, k))
    latent = np.vstack(X_parts)
    y = np.concatenate(y_parts)
    order = rng.permutation(len(y))
    latent, y = latent[order], y[order]
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((len(y), 0))
    categorical = _attach_categorical(rng, latent, y, n_categorical, n_classes)
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "gaussian_clusters"})


def make_hypercube_rules(
    name: str,
    n_records: int = 300,
    n_numeric: int = 8,
    n_categorical: int = 0,
    n_classes: int = 3,
    n_rule_features: int = 3,
    noise: float = 0.1,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Axis-aligned threshold rules — favours trees, forests and rule learners."""
    rng = np.random.default_rng(random_state)
    latent_dim = max(n_numeric, n_rule_features, 2)
    latent = rng.uniform(-1, 1, size=(n_records, latent_dim))
    rule_features = rng.choice(latent_dim, size=min(n_rule_features, latent_dim), replace=False)
    thresholds = rng.uniform(-0.4, 0.4, size=len(rule_features))
    bits = (latent[:, rule_features] > thresholds).astype(int)
    region = bits @ (2 ** np.arange(len(rule_features)))
    region_to_class = rng.integers(0, n_classes, size=int(region.max()) + 1)
    # Guarantee every class appears.
    for k in range(n_classes):
        if k not in region_to_class:
            region_to_class[rng.integers(0, len(region_to_class))] = k
    y = region_to_class[region]
    flip = rng.random(n_records) < noise
    y[flip] = rng.integers(0, n_classes, size=flip.sum())
    for k in range(n_classes):
        if not np.any(y == k):
            y[rng.integers(0, n_records, size=2)] = k
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((n_records, 0))
    categorical = _attach_categorical(rng, latent, y, n_categorical, n_classes)
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "hypercube_rules"})


def make_nonlinear_manifold(
    name: str,
    n_records: int = 300,
    n_numeric: int = 6,
    n_categorical: int = 0,
    n_classes: int = 2,
    noise: float = 0.15,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Concentric rings / interleaved spirals — favours kNN, SVM-RBF and MLPs."""
    rng = np.random.default_rng(random_state)
    sizes = _class_sizes(rng, n_records, n_classes, imbalance)
    points, labels = [], []
    for k, size in enumerate(sizes):
        radius = 1.0 + 1.4 * k
        angles = rng.uniform(0, 2 * np.pi, size=size)
        ring = np.column_stack([radius * np.cos(angles), radius * np.sin(angles)])
        ring += rng.normal(scale=noise * radius, size=ring.shape)
        points.append(ring)
        labels.append(np.full(size, k))
    base = np.vstack(points)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    base, y = base[order], y[order]
    extra_dim = max(0, n_numeric - 2)
    projection = rng.normal(size=(2, extra_dim)) if extra_dim else np.zeros((2, 0))
    extras = base @ projection + rng.normal(scale=0.3, size=(len(y), extra_dim))
    latent = np.hstack([base, extras])
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((len(y), 0))
    categorical = _attach_categorical(rng, latent, y, n_categorical, n_classes)
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "nonlinear_manifold"})


def make_sparse_prototypes(
    name: str,
    n_records: int = 300,
    n_numeric: int = 20,
    n_categorical: int = 0,
    n_classes: int = 4,
    n_prototypes_per_class: int = 3,
    noise: float = 0.6,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Many prototypes per class in a high-dimensional space — favours instance-based learners."""
    rng = np.random.default_rng(random_state)
    sizes = _class_sizes(rng, n_records, n_classes, imbalance)
    latent_dim = max(2, n_numeric)
    points, labels = [], []
    for k, size in enumerate(sizes):
        prototypes = rng.normal(scale=3.0, size=(n_prototypes_per_class, latent_dim))
        assignment = rng.integers(0, n_prototypes_per_class, size=size)
        points.append(prototypes[assignment] + rng.normal(scale=noise, size=(size, latent_dim)))
        labels.append(np.full(size, k))
    latent = np.vstack(points)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    latent, y = latent[order], y[order]
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((len(y), 0))
    categorical = _attach_categorical(rng, latent, y, n_categorical, n_classes)
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "sparse_prototypes"})


def make_noisy_linear(
    name: str,
    n_records: int = 300,
    n_numeric: int = 10,
    n_categorical: int = 0,
    n_classes: int = 2,
    informative: int = 4,
    noise: float = 0.3,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Linear decision boundary buried in noise features — favours regularised linear models."""
    rng = np.random.default_rng(random_state)
    latent_dim = max(2, n_numeric)
    latent = rng.normal(size=(n_records, latent_dim))
    informative = min(informative, latent_dim)
    weights = np.zeros((latent_dim, n_classes))
    weights[:informative] = rng.normal(scale=2.0, size=(informative, n_classes))
    scores = latent @ weights + rng.normal(scale=noise * 3.0, size=(n_records, n_classes))
    if imbalance > 0:
        scores[:, 0] += imbalance * 2.0
    y = scores.argmax(axis=1)
    for k in range(n_classes):
        if not np.any(y == k):
            y[rng.integers(0, n_records, size=2)] = k
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((n_records, 0))
    categorical = _attach_categorical(rng, latent, y, n_categorical, n_classes)
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "noisy_linear"})


def make_categorical_rules(
    name: str,
    n_records: int = 300,
    n_numeric: int = 2,
    n_categorical: int = 8,
    n_classes: int = 3,
    noise: float = 0.1,
    imbalance: float = 0.0,
    random_state: int | None = None,
) -> Dataset:
    """Mostly-categorical data whose label depends on category combinations —
    favours the discretising Bayes learners and rule/tree learners."""
    rng = np.random.default_rng(random_state)
    n_categorical = max(1, n_categorical)
    cardinalities = rng.integers(2, 6, size=n_categorical)
    codes = np.column_stack([rng.integers(0, c, size=n_records) for c in cardinalities])
    key_columns = rng.choice(n_categorical, size=min(2, n_categorical), replace=False)
    key = codes[:, key_columns].sum(axis=1)
    mapping = rng.integers(0, n_classes, size=int(key.max()) + 1)
    for k in range(n_classes):
        if k not in mapping:
            mapping[rng.integers(0, len(mapping))] = k
    y = mapping[key]
    flip = rng.random(n_records) < noise
    y[flip] = rng.integers(0, n_classes, size=flip.sum())
    for k in range(n_classes):
        if not np.any(y == k):
            y[rng.integers(0, n_records, size=2)] = k
    categorical = np.column_stack(
        [np.array([f"c{j}_v{v}" for v in codes[:, j]], dtype=object) for j in range(n_categorical)]
    )
    if n_numeric:
        numeric = rng.normal(size=(n_records, n_numeric)) + y[:, None] * rng.normal(
            scale=0.5, size=n_numeric
        )
    else:
        numeric = np.zeros((n_records, 0))
    return Dataset(name, numeric, categorical, np.array([f"class_{v}" for v in y], dtype=object),
                   metadata={"family": "categorical_rules"})


# -- regression concept families ---------------------------------------------------
#
# Mirrors of the classification families for continuous targets: each family
# favours a different regressor type (linear models, smooth nonlinear models,
# tree/forest models), which is the heterogeneity algorithm selection needs.


def _attach_categorical_regression(
    rng: np.random.Generator,
    latent: np.ndarray,
    y: np.ndarray,
    n_categorical: int,
) -> np.ndarray:
    """Categorical attributes for a continuous target: bin y into pseudo-classes."""
    if n_categorical == 0:
        return np.zeros((latent.shape[0], 0), dtype=object)
    ranks = np.argsort(np.argsort(y))
    pseudo_classes = (ranks * 4 // max(1, len(y))).astype(int)
    return _attach_categorical(rng, latent, pseudo_classes, n_categorical, 4)


def make_linear_response(
    name: str,
    n_records: int = 300,
    n_numeric: int = 10,
    n_categorical: int = 0,
    informative: int = 4,
    noise: float = 0.3,
    random_state: int | None = None,
) -> Dataset:
    """Sparse linear response buried in noise features — favours ridge/lasso."""
    rng = np.random.default_rng(random_state)
    latent_dim = max(2, n_numeric)
    latent = rng.normal(size=(n_records, latent_dim))
    informative = min(max(1, informative), latent_dim)
    weights = np.zeros(latent_dim)
    weights[:informative] = rng.normal(scale=2.0, size=informative)
    y = latent @ weights + rng.normal(scale=noise * np.abs(weights).sum(), size=n_records)
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((n_records, 0))
    categorical = _attach_categorical_regression(rng, latent, y, n_categorical)
    return Dataset(name, numeric, categorical, y, task=TaskType.REGRESSION,
                   metadata={"family": "linear_response"})


def make_friedman(
    name: str,
    n_records: int = 300,
    n_numeric: int = 8,
    n_categorical: int = 0,
    noise: float = 0.5,
    random_state: int | None = None,
) -> Dataset:
    """The Friedman #1 surface — smooth nonlinear, favours SVR / MLP / k-NN."""
    rng = np.random.default_rng(random_state)
    latent_dim = max(5, n_numeric)
    latent = rng.uniform(0.0, 1.0, size=(n_records, latent_dim))
    y = (
        10.0 * np.sin(np.pi * latent[:, 0] * latent[:, 1])
        + 20.0 * (latent[:, 2] - 0.5) ** 2
        + 10.0 * latent[:, 3]
        + 5.0 * latent[:, 4]
        + rng.normal(scale=noise, size=n_records)
    )
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((n_records, 0))
    categorical = _attach_categorical_regression(rng, latent, y, n_categorical)
    return Dataset(name, numeric, categorical, y, task=TaskType.REGRESSION,
                   metadata={"family": "friedman"})


def make_piecewise_response(
    name: str,
    n_records: int = 300,
    n_numeric: int = 8,
    n_categorical: int = 0,
    n_rule_features: int = 3,
    noise: float = 0.2,
    random_state: int | None = None,
) -> Dataset:
    """Axis-aligned constant plateaus plus noise — favours trees and forests."""
    rng = np.random.default_rng(random_state)
    latent_dim = max(n_numeric, n_rule_features, 2)
    latent = rng.uniform(-1, 1, size=(n_records, latent_dim))
    rule_features = rng.choice(latent_dim, size=min(n_rule_features, latent_dim), replace=False)
    thresholds = rng.uniform(-0.4, 0.4, size=len(rule_features))
    bits = (latent[:, rule_features] > thresholds).astype(int)
    region = bits @ (2 ** np.arange(len(rule_features)))
    region_levels = rng.normal(scale=3.0, size=int(region.max()) + 1)
    y = region_levels[region] + rng.normal(scale=noise, size=n_records)
    numeric = latent[:, :n_numeric] if n_numeric else np.zeros((n_records, 0))
    categorical = _attach_categorical_regression(rng, latent, y, n_categorical)
    return Dataset(name, numeric, categorical, y, task=TaskType.REGRESSION,
                   metadata={"family": "piecewise_response"})


REGRESSION_FAMILIES = {
    "linear_response": make_linear_response,
    "friedman": make_friedman,
    "piecewise_response": make_piecewise_response,
}


def make_regression_dataset(family: str, name: str, **kwargs) -> Dataset:
    """Build a regression dataset from a named family (:data:`REGRESSION_FAMILIES`)."""
    if family not in REGRESSION_FAMILIES:
        raise ValueError(
            f"unknown regression family {family!r}; known: {sorted(REGRESSION_FAMILIES)}"
        )
    return REGRESSION_FAMILIES[family](name=name, **kwargs)


# -- messy-data corruption layer ----------------------------------------------------


def corrupt(
    dataset: Dataset,
    missing_rate: float = 0.1,
    scale_skew: float = 0.0,
    rare_rate: float = 0.0,
    n_rare_values: int = 3,
    random_state: int | None = None,
    name: str | None = None,
) -> Dataset:
    """Degrade a clean dataset into a messy real-world lookalike.

    Three independent corruptions, all applied to the *attributes* only (the
    target is never touched, so the underlying concept is unchanged):

    * ``missing_rate`` — MCAR missingness: each numeric cell becomes NaN with
      this probability (a column can end up entirely missing on small data —
      that is a supported edge case, not a bug);
    * ``scale_skew`` — per-column scale distortion: numeric column ``j`` is
      multiplied by ``10**u_j`` with ``u_j ~ U(-scale_skew, scale_skew)``,
      the classic unscaled-features hazard for distance/margin learners;
    * ``rare_rate`` — long-tail categories: each categorical cell is replaced
      with one of ``n_rare_values`` fresh string values (per column) with
      this probability, so CV test folds routinely contain categories unseen
      in their training folds.

    Bare estimators fed through :meth:`Dataset.to_matrix` crash-score on the
    missing values; pipeline configurations with an enabled imputer (and rare
    grouping) handle them — which is exactly the contrast the corpus and the
    performance table need to make pipeline knowledge learnable.
    """
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1)")
    if scale_skew < 0.0:
        raise ValueError("scale_skew must be >= 0")
    if not 0.0 <= rare_rate < 1.0:
        raise ValueError("rare_rate must be in [0, 1)")
    if n_rare_values < 1:
        raise ValueError("n_rare_values must be >= 1")
    rng = np.random.default_rng(random_state)
    numeric = np.asarray(dataset.numeric, dtype=np.float64).copy()
    if numeric.size and scale_skew > 0.0:
        factors = 10.0 ** rng.uniform(-scale_skew, scale_skew, size=numeric.shape[1])
        numeric = numeric * factors
    if numeric.size and missing_rate > 0.0:
        mask = rng.random(numeric.shape) < missing_rate
        numeric[mask] = np.nan
    categorical = np.asarray(dataset.categorical, dtype=object).copy()
    if categorical.size and rare_rate > 0.0:
        for j in range(categorical.shape[1]):
            hit = rng.random(categorical.shape[0]) < rare_rate
            # Fresh string values per column: unseen anywhere in the clean
            # data, so they stress both rare grouping and unknown handling.
            labels = rng.integers(0, n_rare_values, size=int(hit.sum()))
            categorical[hit, j] = [f"rare_c{j}_v{v}" for v in labels]
    metadata = dict(dataset.metadata)
    metadata["corrupted"] = {
        "missing_rate": missing_rate,
        "scale_skew": scale_skew,
        "rare_rate": rare_rate,
        "source": dataset.name,
    }
    return Dataset(
        name=name or f"{dataset.name}[messy]",
        numeric=numeric,
        categorical=categorical,
        target=dataset.target,
        metadata=metadata,
        task=dataset.task,
    )


CONCEPT_FAMILIES = {
    "gaussian_clusters": make_gaussian_clusters,
    "hypercube_rules": make_hypercube_rules,
    "nonlinear_manifold": make_nonlinear_manifold,
    "sparse_prototypes": make_sparse_prototypes,
    "noisy_linear": make_noisy_linear,
    "categorical_rules": make_categorical_rules,
}


def make_dataset(
    family: str,
    name: str,
    **kwargs,
) -> Dataset:
    """Build a dataset from a named concept family (see :data:`CONCEPT_FAMILIES`)."""
    if family not in CONCEPT_FAMILIES:
        raise ValueError(f"unknown concept family {family!r}; known: {sorted(CONCEPT_FAMILIES)}")
    return CONCEPT_FAMILIES[family](name=name, **kwargs)
