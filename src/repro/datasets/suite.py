"""Benchmark dataset suites.

Two suites mirror the paper's data:

* :func:`test_suite` — 21 datasets whose shapes (records, numeric/categorical
  attribute counts, classes) follow Table XI.  The paper's datasets come from
  UCI; without network access we generate synthetic datasets with the same
  shapes, assigning each a concept family so the suite spans linearly
  separable, rule-like, manifold and categorical-heavy problems.
* :func:`knowledge_suite` — the pool of datasets that research-paper
  experiences refer to (the paper ends up with 69 knowledge pairs); sizes and
  shapes are drawn from ranges typical of the comparison papers it cites.

Record counts can be capped (``max_records``) because several Table XI
datasets have tens of thousands of rows, which is unnecessary for reproducing
the *shape* of the results on a laptop.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .synthetic import (
    CONCEPT_FAMILIES,
    REGRESSION_FAMILIES,
    corrupt,
    make_dataset,
    make_regression_dataset,
)

__all__ = ["TEST_SUITE_SPECS", "test_suite", "knowledge_suite", "regression_suite"]


# (symbol, paper dataset name, records, numeric attrs, categorical attrs, classes, family)
TEST_SUITE_SPECS: list[tuple[str, str, int, int, int, int, str]] = [
    ("D1", "Pittsburgh Bridges (MATERIAL)", 108, 3, 10, 3, "categorical_rules"),
    ("D2", "Pittsburgh Bridges (TYPE)", 108, 3, 10, 6, "categorical_rules"),
    ("D3", "Flags", 194, 10, 20, 8, "categorical_rules"),
    ("D4", "Liver Disorders", 345, 6, 1, 2, "noisy_linear"),
    ("D5", "Vertebral Column", 310, 5, 1, 2, "gaussian_clusters"),
    ("D6", "Planning Relax", 182, 12, 1, 2, "noisy_linear"),
    ("D7", "Mammographic Mass", 961, 1, 5, 2, "categorical_rules"),
    ("D8", "Teaching Assistant Evaluation", 151, 1, 5, 3, "categorical_rules"),
    ("D9", "Hill-Valley", 606, 100, 1, 2, "nonlinear_manifold"),
    ("D10", "Ozone Level Detection", 2536, 72, 1, 2, "noisy_linear"),
    ("D11", "Breast Tissue", 106, 9, 1, 6, "sparse_prototypes"),
    ("D12", "banknote authentication", 1372, 4, 1, 2, "nonlinear_manifold"),
    ("D13", "Thoracic Surgery Data", 470, 3, 14, 2, "categorical_rules"),
    ("D14", "Leaf", 340, 14, 2, 30, "sparse_prototypes"),
    ("D15", "Climate Model Simulation Crashes", 540, 18, 1, 2, "noisy_linear"),
    ("D16", "Nursery", 12960, 0, 8, 3, "categorical_rules"),
    ("D17", "Avila", 20867, 9, 1, 12, "sparse_prototypes"),
    ("D18", "Chronic Kidney Disease", 400, 14, 11, 2, "hypercube_rules"),
    ("D19", "Crowdsourced Mapping", 10546, 28, 1, 6, "gaussian_clusters"),
    ("D20", "default of credit card clients", 30000, 14, 10, 2, "noisy_linear"),
    ("D21", "Mice Protein Expression", 1080, 78, 4, 8, "gaussian_clusters"),
]


def _scaled(records: int, max_records: int | None) -> int:
    if max_records is None:
        return records
    return min(records, max_records)


def test_suite(
    max_records: int | None = 600,
    max_numeric: int | None = 30,
    random_state: int = 2020,
    name_prefix: str = "",
) -> list[Dataset]:
    """Return the 21 Table XI-shaped test datasets.

    ``max_records`` / ``max_numeric`` cap the generated size for tractability;
    pass ``None`` to generate the full published shapes.  ``name_prefix``
    lets callers generate *sibling* suites (same shapes, different data) for
    use as a knowledge pool — in the paper both the knowledge datasets and the
    test datasets are UCI-style tabular data, so sharing the shape
    distribution mirrors that setup.
    """
    rng = np.random.default_rng(random_state)
    datasets: list[Dataset] = []
    for symbol, paper_name, records, n_numeric, n_categorical, n_classes, family in TEST_SUITE_SPECS:
        n_records = _scaled(records, max_records)
        numeric = n_numeric if max_numeric is None else min(n_numeric, max_numeric)
        # Each dataset needs at least a handful of records per class.
        n_records = max(n_records, n_classes * 8)
        seed = int(rng.integers(0, 2**31 - 1))
        kwargs = dict(
            n_records=n_records,
            n_numeric=numeric,
            n_categorical=n_categorical,
            n_classes=n_classes,
            random_state=seed,
        )
        dataset = make_dataset(family, name=f"{name_prefix}{symbol}", **kwargs)
        dataset.metadata.update(
            {
                "paper_name": paper_name,
                "paper_records": records,
                "paper_numeric": n_numeric,
                "paper_categorical": n_categorical,
                "paper_classes": n_classes,
            }
        )
        datasets.append(dataset)
    return datasets


def knowledge_suite(
    n_datasets: int = 30,
    min_records: int = 80,
    max_records: int = 500,
    random_state: int = 7,
    corrupt_fraction: float = 0.0,
    missing_rate: float = 0.15,
    rare_rate: float = 0.1,
    scale_skew: float = 1.5,
) -> list[Dataset]:
    """Return the pool of datasets referenced by the synthetic paper corpus.

    The paper's knowledge-acquisition step yields 69 ``(dataset, best
    algorithm)`` pairs mined from 20 papers; this pool plays the role of the
    union of datasets those papers experimented on.  Shapes are drawn from
    ranges typical of the cited comparison studies (UCI-scale tabular data).

    ``corrupt_fraction > 0`` runs that share of the pool through
    :func:`~repro.datasets.synthetic.corrupt` (missing values, scale skew,
    rare categories), interleaved across the families — the messy-data
    workload pipeline search needs in its knowledge corpus.  The default of
    ``0.0`` leaves the historical pool byte-identical.
    """
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if not 0.0 <= corrupt_fraction <= 1.0:
        raise ValueError("corrupt_fraction must be in [0, 1]")
    rng = np.random.default_rng(random_state)
    families = list(CONCEPT_FAMILIES)
    datasets: list[Dataset] = []
    for i in range(n_datasets):
        family = families[i % len(families)]
        n_classes = int(rng.integers(2, 7))
        n_records = int(rng.integers(min_records, max_records + 1))
        n_numeric = int(rng.integers(2, 25))
        n_categorical = int(rng.integers(0, 8))
        if family == "categorical_rules":
            n_categorical = max(2, n_categorical)
        dataset = make_dataset(
            family,
            name=f"K{i + 1:02d}_{family}",
            n_records=max(n_records, n_classes * 10),
            n_numeric=n_numeric,
            n_categorical=n_categorical,
            n_classes=n_classes,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        datasets.append(dataset)
    if corrupt_fraction > 0.0:
        # Deterministic interleave (every k-th dataset) so the messy share is
        # spread across concept families rather than clustered at one end.
        n_messy = int(round(corrupt_fraction * n_datasets))
        if n_messy:
            stride = max(1, n_datasets // n_messy)
            picked = list(range(0, n_datasets, stride))[:n_messy]
            for i in picked:
                datasets[i] = corrupt(
                    datasets[i],
                    missing_rate=missing_rate,
                    rare_rate=rare_rate,
                    scale_skew=scale_skew,
                    random_state=int(rng.integers(0, 2**31 - 1)),
                    name=datasets[i].name,  # keep the K-names stable for the corpus
                )
    return datasets


def regression_suite(
    n_datasets: int = 12,
    min_records: int = 80,
    max_records: int = 400,
    random_state: int = 11,
    name_prefix: str = "R",
) -> list[Dataset]:
    """Return a pool of synthetic regression task instances.

    The regression analogue of :func:`knowledge_suite`: shapes are drawn from
    UCI-scale ranges and the concept families rotate through linear, smooth
    nonlinear and piecewise surfaces so different regressor types win on
    different datasets — the heterogeneity the selection machinery needs.
    """
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    rng = np.random.default_rng(random_state)
    families = list(REGRESSION_FAMILIES)
    datasets: list[Dataset] = []
    for i in range(n_datasets):
        family = families[i % len(families)]
        n_records = int(rng.integers(min_records, max_records + 1))
        n_numeric = int(rng.integers(3, 20))
        n_categorical = int(rng.integers(0, 5))
        dataset = make_regression_dataset(
            family,
            name=f"{name_prefix}{i + 1:02d}_{family}",
            n_records=n_records,
            n_numeric=n_numeric,
            n_categorical=n_categorical,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        datasets.append(dataset)
    return datasets
