"""Dataset container for supervised task instances.

A :class:`Dataset` is the paper's "task instance": a table with numeric
attributes, categorical attributes and a target.  It keeps the two attribute
blocks separate because the meta-features of Table III treat them differently,
and exposes an encoded dense matrix for the learners.

The paper studies classification only; this container carries a
:class:`~repro.datasets.task.TaskType` so the same machinery also serves
regression instances (continuous targets, plain — unstratified — resampling).
Classification remains the default and behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2s

import numpy as np

from ..learners.preprocessing import LabelEncoder, OneHotEncoder
from .task import TaskType, resolve_task

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A supervised task instance.

    Parameters
    ----------
    name:
        Human-readable identifier (used as the key in knowledge pairs).
    numeric:
        ``(n_records, n_numeric)`` float array; may be empty (``shape[1]==0``).
    categorical:
        ``(n_records, n_categorical)`` object array of category values; may be
        empty.
    target:
        Length ``n_records`` array: class labels (any hashable values) for
        classification, real values for regression.
    task:
        ``TaskType.CLASSIFICATION`` (default) or ``TaskType.REGRESSION``;
        plain strings ``"classification"`` / ``"regression"`` are accepted.
    """

    name: str
    numeric: np.ndarray
    categorical: np.ndarray
    target: np.ndarray
    metadata: dict = field(default_factory=dict)
    task: TaskType = TaskType.CLASSIFICATION

    def __post_init__(self) -> None:
        self.task = resolve_task(self.task)
        self.numeric = np.asarray(self.numeric, dtype=np.float64)
        if self.numeric.ndim == 1:
            self.numeric = self.numeric.reshape(-1, 1) if self.numeric.size else self.numeric.reshape(0, 0)
        self.categorical = np.asarray(self.categorical, dtype=object)
        if self.categorical.ndim == 1:
            self.categorical = (
                self.categorical.reshape(-1, 1) if self.categorical.size else self.categorical.reshape(0, 0)
            )
        self.target = np.asarray(self.target)
        if self.task.is_regression:
            self.target = self.target.astype(np.float64)
            if self.target.size and not np.all(np.isfinite(self.target)):
                raise ValueError(f"{self.name}: regression target contains NaN/inf values")
        lengths = {
            block.shape[0]
            for block in (self.numeric, self.categorical)
            if block.size
        }
        lengths.add(self.target.shape[0])
        if len(lengths) > 1:
            raise ValueError(f"{self.name}: inconsistent block lengths {lengths}")
        if self.target.shape[0] == 0:
            raise ValueError(f"{self.name}: empty dataset")
        if self.n_numeric == 0 and self.n_categorical == 0:
            raise ValueError(f"{self.name}: dataset has no attributes")

    # -- identity ---------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash identifying this task instance.

        Two datasets with identical attribute blocks, target and task type
        share a fingerprint regardless of their ``name``, so request-time
        caches (meta-feature memoization, the serving dispatcher) recognise
        repeat queries for the same data.  Computed once and memoized —
        datasets are treated as immutable throughout the codebase.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        def framed(values) -> bytes:
            # Length-prefix every entry: a plain joiner would let crafted
            # values collide (['a\x1fb','c'] vs ['a','b\x1fc']), and values
            # are arbitrary client strings on the serving path.
            parts = []
            for value in values:
                encoded = str(value).encode("utf-8")
                parts.append(len(encoded).to_bytes(4, "little"))
                parts.append(encoded)
            return b"".join(parts)

        digest = blake2s(digest_size=16)
        digest.update(self.task.value.encode("utf-8"))
        digest.update(repr(self.numeric.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(self.numeric, dtype=np.float64).tobytes())
        digest.update(repr(self.categorical.shape).encode("utf-8"))
        if self.categorical.size:
            digest.update(framed(self.categorical.ravel()))
        if self.target.dtype == object:
            digest.update(framed(self.target))
        else:
            digest.update(self.target.dtype.str.encode("utf-8"))
            digest.update(np.ascontiguousarray(self.target).tobytes())
        fingerprint = digest.hexdigest()
        self.__dict__["_fingerprint"] = fingerprint
        return fingerprint

    # -- task type --------------------------------------------------------------------
    @property
    def is_classification(self) -> bool:
        return self.task.is_classification

    @property
    def is_regression(self) -> bool:
        return self.task.is_regression

    # -- basic shape ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.target.shape[0])

    @property
    def n_numeric(self) -> int:
        return int(self.numeric.shape[1]) if self.numeric.size else 0

    @property
    def n_categorical(self) -> int:
        return int(self.categorical.shape[1]) if self.categorical.size else 0

    @property
    def n_attributes(self) -> int:
        return self.n_numeric + self.n_categorical

    @property
    def n_classes(self) -> int:
        return int(len(np.unique(self.target)))

    @property
    def class_counts(self) -> np.ndarray:
        _, counts = np.unique(self.target, return_counts=True)
        return counts

    @property
    def target_mean(self) -> float:
        """Mean of a regression target (raises for categorical labels)."""
        return float(np.asarray(self.target, dtype=np.float64).mean())

    @property
    def target_std(self) -> float:
        """Standard deviation of a regression target."""
        return float(np.asarray(self.target, dtype=np.float64).std())

    # -- encoding ---------------------------------------------------------------------
    def _encoded_target(self) -> np.ndarray:
        """Label-encoded target for classification, ``float64`` for regression."""
        if self.is_regression:
            return np.asarray(self.target, dtype=np.float64)
        return LabelEncoder().fit_transform(self.target)

    def to_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` with categorical attributes one-hot encoded.

        For classification the target is label-encoded into
        ``0..n_classes-1``; for regression it is returned as ``float64``.

        Missing numeric values are **not** imputed here any more: imputation
        is a searchable pipeline step (:mod:`repro.learners.pipeline`), not
        dataset policy — NaNs pass through so a bare estimator on messy data
        crash-scores honestly while a pipeline's imputer earns its keep.  On
        clean data the output is byte-identical to the historical
        impute-then-encode path (the old mean imputation was a no-op there);
        legacy callers that relied on hard-wired imputation can use the
        deprecated :func:`~repro.learners.preprocessing.encode_mixed_matrix`
        shim.
        """
        blocks: list[np.ndarray] = []
        if self.n_numeric:
            blocks.append(np.asarray(self.numeric, dtype=np.float64))
        if self.n_categorical:
            blocks.append(OneHotEncoder().fit_transform(self.categorical))
        return np.hstack(blocks), self._encoded_target()

    def to_raw_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` with the attribute blocks left raw for pipelines.

        ``X`` keeps numeric columns as floats (NaNs preserved) and
        categorical columns as strings — an object matrix whenever
        categorical attributes exist, the plain float matrix otherwise; the
        column layout matches :meth:`to_matrix` (numeric block first).
        Categorical values are stringified (missing markers preserved)
        because the pipeline re-derives the numeric/categorical split from
        the matrix alone: integer-coded categories would otherwise look
        numeric and get imputed/scaled instead of one-hot encoded.
        :class:`~repro.learners.pipeline.Pipeline` estimators fit their
        preprocessing steps on this per training fold, which is what makes
        imputation/encoding choices part of the searched configuration.
        """
        if not self.n_categorical:
            return np.asarray(self.numeric, dtype=np.float64).copy(), self._encoded_target()
        blocks = []
        if self.n_numeric:
            blocks.append(np.asarray(self.numeric, dtype=np.float64).astype(object))
        categorical = np.array(
            [
                [
                    value
                    if value is None or (isinstance(value, float) and value != value)
                    else str(value)
                    for value in row
                ]
                for row in self.categorical
            ],
            dtype=object,
        ).reshape(self.categorical.shape)
        blocks.append(categorical)
        return np.hstack(blocks), self._encoded_target()

    # -- resampling helpers --------------------------------------------------------------
    def subsample(self, n: int, random_state: int | None = None) -> "Dataset":
        """Return a subsample of at most ``n`` records.

        Classification subsamples are stratified per class; regression
        targets have no classes to preserve, so a plain uniform draw without
        replacement is used instead.
        """
        if n >= self.n_records:
            return self
        rng = np.random.default_rng(random_state)
        if self.is_regression:
            keep_arr = np.sort(rng.choice(self.n_records, size=n, replace=False))
            return self.take(keep_arr, name=f"{self.name}[sub{n}]")
        keep: list[int] = []
        labels, counts = np.unique(self.target, return_counts=True)
        fractions = counts / counts.sum()
        for label, fraction in zip(labels, fractions):
            members = np.flatnonzero(self.target == label)
            take = max(1, int(round(fraction * n)))
            take = min(take, len(members))
            keep.extend(rng.choice(members, size=take, replace=False).tolist())
        keep_arr = np.array(sorted(keep))
        return self.take(keep_arr, name=f"{self.name}[sub{n}]")

    def take(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            name=name or self.name,
            numeric=self.numeric[indices] if self.n_numeric else np.zeros((len(indices), 0)),
            categorical=(
                self.categorical[indices]
                if self.n_categorical
                else np.zeros((len(indices), 0), dtype=object)
            ),
            target=self.target[indices],
            metadata=dict(self.metadata),
            task=self.task,
        )

    def train_test_split(
        self, test_size: float = 0.3, random_state: int | None = None
    ) -> tuple["Dataset", "Dataset"]:
        """Split into train/test datasets (stratified for classification)."""
        rng = np.random.default_rng(random_state)
        if self.is_regression:
            split_point = max(1, int(round((1 - test_size) * self.n_records)))
            split_point = min(split_point, self.n_records - 1)
            order = rng.permutation(self.n_records)
            test_mask = np.zeros(self.n_records, dtype=bool)
            test_mask[order[split_point:]] = True
        else:
            test_idx: list[int] = []
            for label in np.unique(self.target):
                members = rng.permutation(np.flatnonzero(self.target == label))
                take = max(1, int(round(test_size * len(members)))) if len(members) > 1 else 0
                test_idx.extend(members[:take].tolist())
            test_mask = np.zeros(self.n_records, dtype=bool)
            test_mask[test_idx] = True
            if not test_mask.any() or test_mask.all():
                split_point = max(1, int(round((1 - test_size) * self.n_records)))
                order = rng.permutation(self.n_records)
                test_mask = np.zeros(self.n_records, dtype=bool)
                test_mask[order[split_point:]] = True
        train = self.take(np.flatnonzero(~test_mask), name=f"{self.name}[train]")
        test = self.take(np.flatnonzero(test_mask), name=f"{self.name}[test]")
        return train, test

    def summary(self) -> dict:
        """Shape summary in the layout of the paper's Table XI."""
        out = {
            "name": self.name,
            "records": self.n_records,
            "attributes": self.n_attributes,
            "numeric_attributes": self.n_numeric,
            "categorical_attributes": self.n_categorical,
        }
        if self.is_regression:
            out["task"] = self.task.value
            out["target_mean"] = round(self.target_mean, 4)
            out["target_std"] = round(self.target_std, 4)
        else:
            out["classes"] = self.n_classes
        return out

    def __repr__(self) -> str:
        if self.is_regression:
            return (
                f"Dataset({self.name!r}, task='regression', records={self.n_records}, "
                f"numeric={self.n_numeric}, categorical={self.n_categorical})"
            )
        return (
            f"Dataset({self.name!r}, records={self.n_records}, "
            f"numeric={self.n_numeric}, categorical={self.n_categorical}, "
            f"classes={self.n_classes})"
        )
