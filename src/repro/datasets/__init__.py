"""Dataset substrate: task-instance container, synthetic generators and suites."""

from .dataset import Dataset
from .suite import TEST_SUITE_SPECS, knowledge_suite, test_suite
from .synthetic import (
    CONCEPT_FAMILIES,
    make_categorical_rules,
    make_dataset,
    make_gaussian_clusters,
    make_hypercube_rules,
    make_noisy_linear,
    make_nonlinear_manifold,
    make_sparse_prototypes,
)

__all__ = [
    "Dataset",
    "TEST_SUITE_SPECS",
    "knowledge_suite",
    "test_suite",
    "CONCEPT_FAMILIES",
    "make_categorical_rules",
    "make_dataset",
    "make_gaussian_clusters",
    "make_hypercube_rules",
    "make_noisy_linear",
    "make_nonlinear_manifold",
    "make_sparse_prototypes",
]
