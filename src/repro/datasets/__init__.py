"""Dataset substrate: task-instance container, synthetic generators and suites."""

from .dataset import Dataset
from .suite import TEST_SUITE_SPECS, knowledge_suite, regression_suite, test_suite
from .synthetic import (
    CONCEPT_FAMILIES,
    REGRESSION_FAMILIES,
    corrupt,
    make_categorical_rules,
    make_dataset,
    make_friedman,
    make_gaussian_clusters,
    make_hypercube_rules,
    make_linear_response,
    make_noisy_linear,
    make_nonlinear_manifold,
    make_piecewise_response,
    make_regression_dataset,
    make_sparse_prototypes,
)
from .task import TaskType, resolve_task

__all__ = [
    "Dataset",
    "TaskType",
    "resolve_task",
    "TEST_SUITE_SPECS",
    "knowledge_suite",
    "regression_suite",
    "test_suite",
    "CONCEPT_FAMILIES",
    "REGRESSION_FAMILIES",
    "corrupt",
    "make_categorical_rules",
    "make_dataset",
    "make_friedman",
    "make_gaussian_clusters",
    "make_hypercube_rules",
    "make_linear_response",
    "make_noisy_linear",
    "make_nonlinear_manifold",
    "make_piecewise_response",
    "make_regression_dataset",
    "make_sparse_prototypes",
]
