"""Task types: the kind of supervised problem a :class:`Dataset` poses.

The paper's pipeline — corpus → performance table → DMD → UDR — is
task-agnostic: nothing in knowledge acquisition, meta-feature extraction or
the select-then-tune loop depends on the objective being *accuracy*.  The
:class:`TaskType` enum makes the task a first-class property so every layer
(datasets, learners, objectives, tables, AutoModel) can branch on it while
classification — the paper's original setting — remains the default and its
behaviour stays byte-identical.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["TaskType", "resolve_task"]


class TaskType(str, Enum):
    """Supported supervised task types.

    ``str``-valued so a ``TaskType`` compares equal to its plain string form
    (``TaskType.REGRESSION == "regression"``) and serialises transparently in
    metadata dicts and store-context strings.
    """

    CLASSIFICATION = "classification"
    REGRESSION = "regression"

    @property
    def is_classification(self) -> bool:
        return self is TaskType.CLASSIFICATION

    @property
    def is_regression(self) -> bool:
        return self is TaskType.REGRESSION


def resolve_task(task: "TaskType | str | None") -> TaskType:
    """Normalise a user-facing ``task`` argument to a :class:`TaskType`.

    ``None`` resolves to classification (the paper's setting), strings are
    matched case-insensitively, and anything else raises with the list of
    known task types.
    """
    if task is None:
        return TaskType.CLASSIFICATION
    if isinstance(task, TaskType):
        return task
    try:
        return TaskType(str(task).strip().lower())
    except ValueError:
        known = [t.value for t in TaskType]
        raise ValueError(f"unknown task {task!r}; known task types: {known}") from None
