"""Simpler CASH baselines: pure random joint search and single-best-algorithm."""

from __future__ import annotations

import time

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..evaluation.performance import PerformanceTable
from ..execution import estimator_engine
from ..hpo.base import Budget, HPOProblem
from ..hpo.genetic import GeneticAlgorithm
from ..learners.pipeline import training_matrix
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task
from .autoweka import AutoWekaBaseline, CASHBaselineSolution

__all__ = ["RandomCASH", "SingleBestBaseline"]


class RandomCASH(AutoWekaBaseline):
    """Random search over the joint algorithm+hyperparameter space.

    The weakest reasonable CASH baseline: identical search space to Auto-WEKA,
    no model guidance at all.
    """

    def __init__(
        self,
        registry: AlgorithmRegistry | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        backend: str = "thread",
        task: str = "classification",
        metric: str | None = None,
    ) -> None:
        super().__init__(
            registry=registry,
            strategy="random",
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
            backend=backend,
            task=task,
            metric=metric,
        )


class SingleBestBaseline:
    """Always pick the algorithm with the best *average* knowledge-pool performance.

    This is the "Top1 single algorithm" column of Tables VIII/IX and XII/XIII:
    no per-dataset selection, just the globally strongest catalogue member,
    optionally tuned on the target dataset.
    """

    def __init__(
        self,
        performance: PerformanceTable,
        registry: AlgorithmRegistry | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        backend: str = "thread",
        task: str = "classification",
        metric: str | None = None,
    ) -> None:
        self.task = resolve_task(task).value
        self.metric = metric
        self.performance = performance
        self.registry = registry if registry is not None else registry_for_task(self.task)
        self.cv = cv
        self.tuning_max_records = tuning_max_records
        self.random_state = random_state
        self.n_workers = n_workers
        self.backend = backend
        self.algorithm = performance.top_algorithms(k=1, by="score")[0][0]

    def run(
        self,
        dataset: Dataset,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = 20,
    ) -> CASHBaselineSolution:
        """Tune the single globally-best algorithm on ``dataset``."""
        start = time.monotonic()
        spec = self.registry.get(self.algorithm)
        data = (
            dataset.subsample(self.tuning_max_records, random_state=self.random_state)
            if self.tuning_max_records
            else dataset
        )
        X, y = training_matrix(data, spec)
        engine = estimator_engine(
            spec.build,
            X,
            y,
            cv=self.cv,
            random_state=self.random_state,
            n_workers=self.n_workers,
            backend=self.backend,
            name=f"single-best-{dataset.name}",
            task=self.task,
            metric=self.metric,
        )
        problem = HPOProblem(spec.space, name=f"single-best-{dataset.name}", engine=engine)
        optimizer = GeneticAlgorithm(
            population_size=10, n_generations=20, random_state=self.random_state
        )
        budget = Budget(max_evaluations=max_evaluations, time_limit=time_limit)
        result = optimizer.optimize(problem, budget)
        config = (
            result.best_config if np.isfinite(result.best_score) else spec.default_config()
        )
        score = float(result.best_score) if np.isfinite(result.best_score) else 0.0
        return CASHBaselineSolution(
            algorithm=self.algorithm,
            config=config,
            cv_score=score,
            optimizer="single-best",
            n_evaluations=result.n_evaluations,
            elapsed=time.monotonic() - start,
            history=result,
            engine_stats=result.engine_stats,
        )
