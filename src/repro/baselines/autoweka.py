"""Auto-WEKA-style baseline: one joint hierarchical CASH search.

Auto-WEKA (Thornton et al., KDD 2013) treats the algorithm choice itself as a
top-level categorical hyperparameter and runs a single hyperparameter
optimisation over the combined space of all algorithms and all of their
hyperparameters.  This module reproduces that formulation over our catalogue:

* :func:`joint_space` builds the hierarchical space — a root ``__algorithm__``
  categorical plus every algorithm's hyperparameters, each conditioned on the
  root selecting that algorithm (name-mangled to stay unique).
* :class:`AutoWekaBaseline` searches it with a SMAC-like strategy: random
  initialisation followed by surrogate-guided proposals (GP-EI over the joint
  encoding) interleaved with random restarts, under a wall-clock budget —
  which is what the paper's Table X comparison runs under 30 s / 5 min limits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..execution import EvaluationEngine, estimator_engine
from ..hpo.base import Budget, HPOProblem, OptimizationResult
from ..hpo.bayesian import BayesianOptimization
from ..hpo.random_search import RandomSearch
from ..hpo.space import AndCondition, CategoricalParam, Condition, ConfigSpace
from ..learners.base import BaseClassifier
from ..learners.metrics import resolve_scorer
from ..learners.pipeline import registry_training_matrix, training_matrix
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task

__all__ = [
    "joint_space",
    "split_joint_config",
    "JointBuilder",
    "AutoWekaBaseline",
    "CASHBaselineSolution",
]

ALGORITHM_KEY = "__algorithm__"
_SEPARATOR = "::"


def _mangle_condition(condition, algorithm: str):
    """Rewrite a condition's parent name(s) into the joint-space namespace."""
    if isinstance(condition, AndCondition):
        return AndCondition(
            tuple(_mangle_condition(c, algorithm) for c in condition.conditions)
        )
    return Condition(f"{algorithm}{_SEPARATOR}{condition.parent}", condition.values)


def joint_space(registry: AlgorithmRegistry) -> ConfigSpace:
    """Hierarchical CASH space: algorithm choice + all per-algorithm hyperparameters.

    A parameter's own activation condition (pipeline specs gate e.g.
    ``encoder:min_frequency`` on ``encoder:group_rare``) is preserved — the
    joint space requires *both* the root selecting the algorithm and the
    original condition, so dead knobs of unselected branches never burn
    evaluations or split cache fingerprints.
    """
    space = ConfigSpace([CategoricalParam(ALGORITHM_KEY, registry.names)])
    for spec in registry:
        for param in spec.space:
            mangled = f"{spec.name}{_SEPARATOR}{param.name}"
            # Re-wrap the parameter under its mangled name via a shallow copy.
            clone = type(param).__new__(type(param))
            clone.__dict__.update(param.__dict__)
            clone.name = mangled
            gate = Condition(ALGORITHM_KEY, (spec.name,))
            original = spec.space.condition(param.name)
            if original is not None:
                condition = AndCondition((gate, _mangle_condition(original, spec.name)))
            else:
                condition = gate
            space.add(clone, condition=condition)
    return space


def split_joint_config(config: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """Extract (algorithm, its own hyperparameters) from a joint configuration."""
    algorithm = config[ALGORITHM_KEY]
    prefix = f"{algorithm}{_SEPARATOR}"
    params = {
        key[len(prefix):]: value for key, value in config.items() if key.startswith(prefix)
    }
    return algorithm, params


class JointBuilder:
    """Picklable joint-space builder: config → estimator of the chosen branch.

    A class rather than a local closure so the evaluation engine's process
    backend (and its zero-copy data plane) can pickle the CV objective instead
    of silently falling back to threads.
    """

    def __init__(self, registry: AlgorithmRegistry) -> None:
        self.registry = registry

    def __call__(self, config: dict[str, Any]) -> BaseClassifier:
        algorithm, params = split_joint_config(config)
        return self.registry.build(algorithm, params)


@dataclass
class CASHBaselineSolution:
    """Result of a baseline CASH run (same shape as Auto-Model's solution)."""

    algorithm: str
    config: dict[str, Any]
    cv_score: float
    optimizer: str
    n_evaluations: int
    elapsed: float
    estimator: BaseClassifier | None = None
    history: OptimizationResult | None = None
    engine_stats: dict = field(default_factory=dict)

    def summary(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "config": self.config,
            "cv_score": round(self.cv_score, 4),
            "optimizer": self.optimizer,
            "n_evaluations": self.n_evaluations,
            "elapsed_seconds": round(self.elapsed, 3),
        }
        if self.engine_stats:
            out["cache_hit_rate"] = self.engine_stats.get("cache_hit_rate")
            out["evals_per_second"] = self.engine_stats.get("evals_per_second")
        return out


class AutoWekaBaseline:
    """Joint-space CASH optimizer in the style of Auto-WEKA.

    Parameters
    ----------
    registry:
        Algorithm catalogue to search over (defaults to the full catalogue).
    strategy:
        ``"smac"`` (GP-EI over the joint space with random interleaving, the
        default) or ``"random"`` (pure random search over the joint space).
    cv:
        Folds used to score each candidate configuration.
    tuning_max_records:
        Stratified subsample cap applied to the dataset during the search.
    """

    def __init__(
        self,
        registry: AlgorithmRegistry | None = None,
        strategy: str = "smac",
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        backend: str = "thread",
        task: str = "classification",
        metric: str | None = None,
    ) -> None:
        if strategy not in ("smac", "random"):
            raise ValueError("strategy must be 'smac' or 'random'")
        self.task = resolve_task(task).value
        self.metric = metric
        self.registry = registry if registry is not None else registry_for_task(self.task)
        self.strategy = strategy
        self.cv = cv
        self.tuning_max_records = tuning_max_records
        self.random_state = random_state
        self.n_workers = n_workers
        self.backend = backend

    def _make_engine(self, dataset: Dataset) -> EvaluationEngine:
        """Auto-WEKA's shared evaluator: one engine for the whole joint space.

        The CV fold plan is computed once for the dataset and reused by every
        (algorithm, hyperparameter) candidate, and duplicate candidates across
        the search are served from the score cache.
        """
        data = (
            dataset.subsample(self.tuning_max_records, random_state=self.random_state)
            if self.tuning_max_records
            else dataset
        )
        X, y = registry_training_matrix(data, self.registry)
        return estimator_engine(
            JointBuilder(self.registry),
            X,
            y,
            cv=self.cv,
            random_state=self.random_state,
            n_workers=self.n_workers,
            backend=self.backend,
            name=f"autoweka-{dataset.name}",
            task=self.task,
            metric=self.metric,
        )

    def run(
        self,
        dataset: Dataset,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        fit_final_estimator: bool = False,
    ) -> CASHBaselineSolution:
        """Search the joint space on ``dataset`` under the given budget."""
        start = time.monotonic()
        space = joint_space(self.registry)
        engine = self._make_engine(dataset)
        problem = HPOProblem(space, name=f"autoweka-{dataset.name}", engine=engine)
        if self.strategy == "random":
            optimizer = RandomSearch(random_state=self.random_state)
        else:
            optimizer = BayesianOptimization(
                n_initial=10, n_candidates=128, random_state=self.random_state
            )
        budget = Budget(max_evaluations=max_evaluations, time_limit=time_limit)
        result = optimizer.optimize(problem, budget)
        if np.isfinite(result.best_score):
            best_joint = result.best_config
            best_score = float(result.best_score)
        else:
            best_joint = space.default_configuration()
            error = resolve_scorer(self.metric, self.task).error_score
            best_score = error if np.isfinite(error) else 0.0
        algorithm, params = split_joint_config(best_joint)
        estimator: BaseClassifier | None = None
        if fit_final_estimator:
            X, y = training_matrix(dataset, self.registry.get(algorithm))
            try:
                estimator = self.registry.build(algorithm, params)
                estimator.fit(X, y)
            except Exception as exc:  # noqa: BLE001 — a failed final fit returns no estimator
                obs.error_event("autoweka.final_fit", exc)
                estimator = None
        return CASHBaselineSolution(
            algorithm=algorithm,
            config=params,
            cv_score=best_score,
            optimizer=f"autoweka-{self.strategy}",
            n_evaluations=result.n_evaluations,
            elapsed=time.monotonic() - start,
            estimator=estimator,
            history=result,
            engine_stats=result.engine_stats,
        )
