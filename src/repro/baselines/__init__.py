"""Baseline CASH solvers the paper compares against (Auto-WEKA and friends)."""

from .autoweka import (
    ALGORITHM_KEY,
    AutoWekaBaseline,
    CASHBaselineSolution,
    joint_space,
    split_joint_config,
)
from .random_cash import RandomCASH, SingleBestBaseline

__all__ = [
    "ALGORITHM_KEY",
    "AutoWekaBaseline",
    "CASHBaselineSolution",
    "joint_space",
    "split_joint_config",
    "RandomCASH",
    "SingleBestBaseline",
]
