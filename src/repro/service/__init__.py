"""Recommendation-serving subsystem.

The offline half of Auto-Model trains decision models; this package puts
them behind a production-style serving surface with four layers:

* :mod:`repro.service.registry` — :class:`ModelRegistry`: versioned,
  hot-swappable storage of saved decision models (atomic promote/rollback,
  LRU of deserialized models).
* :mod:`repro.service.dispatcher` — :class:`RecommendationDispatcher`:
  concurrent ``recommend`` requests, micro-batched into single
  decision-model forward passes, with fingerprint-keyed meta-feature
  caching and tuned-config serving.
* :mod:`repro.service.jobs` — :class:`FitJobQueue`: async fit/refine work
  on background workers (through the shared evaluation engine + result
  store) so serving never blocks on training.
* :mod:`repro.service.http` — :class:`RecommendationService` and the
  stdlib HTTP/JSON server (``python -m repro.service serve``).
"""

from .dispatcher import DispatcherStats, Recommendation, RecommendationDispatcher
from .http import (
    RecommendationService,
    ServiceError,
    dataset_from_json,
    make_http_server,
    serve_in_thread,
)
from .jobs import FitJobQueue
from .registry import ModelRegistry, ServableModel, default_registry_root

__all__ = [
    "ModelRegistry",
    "ServableModel",
    "default_registry_root",
    "Recommendation",
    "RecommendationDispatcher",
    "DispatcherStats",
    "FitJobQueue",
    "RecommendationService",
    "ServiceError",
    "dataset_from_json",
    "make_http_server",
    "serve_in_thread",
]
