"""Recommendation-serving subsystem.

The offline half of Auto-Model trains decision models; this package puts
them behind a production-style serving surface with four layers:

* :mod:`repro.service.registry` — :class:`ModelRegistry`: versioned,
  hot-swappable storage of saved decision models (atomic promote/rollback,
  LRU of deserialized models).
* :mod:`repro.service.dispatcher` — :class:`RecommendationDispatcher`:
  concurrent ``recommend`` requests, micro-batched into single
  decision-model forward passes, with fingerprint-keyed meta-feature
  caching and tuned-config serving.
* :mod:`repro.service.jobs` — :class:`FitJobQueue`: async fit/refine work
  on background workers (through the shared evaluation engine + result
  store) so serving never blocks on training.
* :mod:`repro.service.http` — :class:`RecommendationService` and the
  stdlib HTTP/JSON server (``python -m repro.service serve``).

Scale-out and observability ride on top:

* :mod:`repro.service.pool` — :class:`ServicePool`: pre-forked worker
  processes sharing one listening address (``SO_REUSEPORT`` or
  fork-after-bind), supervised with crash respawn
  (``python -m repro.service serve --workers N``).
* :mod:`repro.service.metrics` — :class:`ServiceMetrics` behind
  ``GET /metrics``: per-endpoint counters, latency quantiles, QPS,
  with file-based cross-worker aggregation.
* :mod:`repro.service.loadgen` — :class:`LoadGenerator`: a stdlib load
  harness for throughput/latency measurement against a running server.
* :mod:`repro.service.store_server` — :class:`StoreService`: the shared
  :class:`~repro.execution.store.ResultStore` served over HTTP for
  cross-host fleet writers (``python -m repro.service store-serve``).
"""

from .dispatcher import (
    DispatcherOverloaded,
    DispatcherStats,
    Recommendation,
    RecommendationDispatcher,
)
from .http import (
    RecommendationService,
    ServiceError,
    dataset_from_json,
    make_http_server,
    route_label,
    serve_in_thread,
)
from .jobs import FitJobQueue
from .loadgen import LoadGenerator, LoadOp, LoadReport
from .metrics import (
    LatencyReservoir,
    MetricsDirectory,
    ServiceMetrics,
    aggregate_worker_payloads,
)
from .pool import ServicePool, reuse_port_supported
from .registry import ModelRegistry, ServableModel, default_registry_root
from .store_server import (
    StoreServer,
    StoreService,
    make_store_server,
    serve_store_in_thread,
    store_route_label,
)

__all__ = [
    "ModelRegistry",
    "ServableModel",
    "default_registry_root",
    "Recommendation",
    "RecommendationDispatcher",
    "DispatcherOverloaded",
    "DispatcherStats",
    "FitJobQueue",
    "RecommendationService",
    "ServiceError",
    "dataset_from_json",
    "make_http_server",
    "route_label",
    "serve_in_thread",
    "ServicePool",
    "reuse_port_supported",
    "ServiceMetrics",
    "LatencyReservoir",
    "MetricsDirectory",
    "aggregate_worker_payloads",
    "LoadGenerator",
    "LoadOp",
    "LoadReport",
    "StoreServer",
    "StoreService",
    "make_store_server",
    "serve_store_in_thread",
    "store_route_label",
]
