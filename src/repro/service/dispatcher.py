"""Batched concurrent recommendation dispatcher — the request tier.

Request-time work for one ``recommend`` call is (1) meta-feature extraction,
(2) a decision-model forward pass, (3) a catalogue-constrained argmax and
(4) a configuration suggestion.  The dispatcher makes that path fast under
concurrency:

* **Micro-batching.**  Caller threads enqueue requests and block on an
  event; a single serve thread drains the queue (up to ``max_batch_size``
  requests or ``max_wait_ms``, whichever first), groups the batch by
  ``(model, version)`` snapshot, and runs ONE
  :meth:`~repro.core.architecture_search.DecisionModel.scores_matrix`
  forward pass per group instead of N scalar calls.
* **Meta-feature memoization.**  Feature extraction inside the batch goes
  through the process-wide fingerprint-keyed
  :data:`~repro.metafeatures.extractor.feature_cache`, so repeat queries for
  the same data skip Table III entirely.
* **Hot-swap safety.**  Each group resolves its registry snapshot exactly
  once; a promote landing mid-batch affects the next batch, never half of
  the current one.  Every response carries the version that produced it.
* **Tuned-config serving.**  When the resolved model carries a result store
  (async refine jobs write there), the dispatcher serves the best previously
  tuned configuration for ``(algorithm, dataset)``; otherwise the
  catalogue's default configuration.

* **Admission control.**  With ``max_queue_depth`` set, a request arriving
  while that many are already pending is rejected *immediately* with
  :class:`DispatcherOverloaded` (the HTTP layer maps it to ``429`` +
  ``Retry-After``) instead of joining an ever-growing queue.  With
  ``max_queue_delay_ms`` set, requests that waited longer than that before
  their batch started are shed the same way.  Under overload the dispatcher
  therefore degrades by turning work away at a bounded p99, not by
  collapsing into multi-second queues.

Errors are contained per request: a bad dataset or unknown model fails that
caller only, never the serve loop.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..core.udr import first_supported_algorithm
from ..datasets.dataset import Dataset
from ..metafeatures.extractor import feature_cache
from .registry import ModelRegistry, ServableModel

__all__ = [
    "Recommendation",
    "DispatcherStats",
    "DispatcherOverloaded",
    "RecommendationDispatcher",
]


class DispatcherOverloaded(RuntimeError):
    """Admission control turned a request away; retry after ``retry_after`` s."""

    def __init__(self, message: str, retry_after: float = 0.5) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass
class Recommendation:
    """One served answer: algorithm + configuration + provenance."""

    dataset: str
    fingerprint: str
    model: str
    version: str
    task: str
    algorithm: str
    config: dict[str, Any]
    config_source: str  # "tuned-store" or "default"
    tuned_score: float | None
    ranking: list[str]
    scores: dict[str, float]
    latency_ms: float
    batch_size: int

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "model": self.model,
            "version": self.version,
            "task": self.task,
            "algorithm": self.algorithm,
            "config": dict(self.config),
            "config_source": self.config_source,
            "tuned_score": self.tuned_score,
            "ranking": list(self.ranking),
            "scores": {k: round(v, 6) for k, v in self.scores.items()},
            "latency_ms": round(self.latency_ms, 3),
            "batch_size": self.batch_size,
        }


@dataclass
class DispatcherStats:
    """Counters the dispatcher accumulates across its lifetime."""

    n_requests: int = 0
    n_batches: int = 0
    n_batched_requests: int = 0
    largest_batch: int = 0
    n_errors: int = 0
    n_shed: int = 0
    max_queue_depth_seen: int = 0
    forward_passes: int = 0
    batch_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.n_batched_requests / self.n_batches if self.n_batches else 0.0

    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.n_batched_requests += size
        self.largest_batch = max(self.largest_batch, size)
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def as_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "n_batched_requests": self.n_batched_requests,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "n_errors": self.n_errors,
            "n_shed": self.n_shed,
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "forward_passes": self.forward_passes,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_sizes.items())
            },
            "feature_cache": feature_cache.stats.as_dict(),
        }


class _Pending:
    """One enqueued request and its completion slot."""

    __slots__ = (
        "dataset", "model_name", "version", "event", "result", "error",
        "abandoned", "admitted", "enqueued_at",
    )

    def __init__(self, dataset: Dataset, model_name: str | None, version: str | None) -> None:
        self.dataset = dataset
        self.model_name = model_name
        self.version = version
        self.event = threading.Event()
        self.result: Recommendation | None = None
        self.error: Exception | None = None
        self.abandoned = False  # caller timed out; skip the work
        self.admitted = False   # counted toward the bounded pending queue
        self.enqueued_at = time.monotonic()


_SHUTDOWN = object()


class RecommendationDispatcher:
    """Concurrent, micro-batched front door over a :class:`ModelRegistry`.

    ``cv`` / ``tuning_max_records`` / ``random_state`` / ``metric`` describe
    the tuning protocol whose stored results the dispatcher serves; they must
    match the refine jobs' protocol for tuned configurations to be found (a
    refine run under a different metric lands in a different store shard).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        batching: bool = True,
        suggest_configs: bool = True,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        metric: str | None = None,
        max_queue_depth: int | None = None,
        max_queue_delay_ms: float | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None to disable)")
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_wait = max(0.0, float(max_wait_ms)) / 1000.0
        self.batching = bool(batching)
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self.max_queue_delay = (
            None if max_queue_delay_ms is None else max(0.0, float(max_queue_delay_ms)) / 1000.0
        )
        self._pending_count = 0  # admitted, not yet answered (guarded by _stats_lock)
        self.suggest_configs = bool(suggest_configs)
        self.cv = cv
        self.tuning_max_records = tuning_max_records
        self.random_state = random_state
        self.metric = metric
        self.stats = DispatcherStats()
        self._stats_lock = threading.Lock()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._closed = False
        self._serve_thread: threading.Thread | None = None
        if self.batching:
            self._serve_thread = threading.Thread(
                target=self._serve_loop, name="recommend-dispatcher", daemon=True
            )
            self._serve_thread.start()

    # -- public API --------------------------------------------------------------------
    def recommend(
        self,
        dataset: Dataset,
        model: str | None = None,
        version: str | None = None,
        timeout: float | None = 30.0,
    ) -> Recommendation:
        """Blocking recommendation for one dataset (thread-safe).

        With batching enabled the request joins the next micro-batch; without
        it the request is served inline on the calling thread.  Either way the
        request first passes admission control: beyond ``max_queue_depth``
        concurrently pending requests, :class:`DispatcherOverloaded` is raised
        immediately instead of queueing.
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        pending = _Pending(dataset, model, version)
        self._admit(pending)
        if not self.batching:
            self._process_batch([pending])
            if pending.error is not None:
                raise pending.error
            assert pending.result is not None
            return pending.result
        self._queue.put(pending)
        if not pending.event.wait(timeout):
            # Best-effort: the serve loop drops abandoned requests it has not
            # started yet, so retrying clients don't amplify the overload.
            pending.abandoned = True
            raise TimeoutError(
                f"recommendation for {dataset.name!r} timed out after {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def recommend_many(
        self,
        datasets: list[Dataset],
        model: str | None = None,
        version: str | None = None,
        return_errors: bool = False,
    ) -> list[Recommendation | Exception]:
        """Serve a caller-assembled batch directly (one forward pass).

        With ``return_errors=False`` (the default) the first failed item
        raises and the batch's other answers are discarded; pass
        ``return_errors=True`` to get per-item results, with the failing
        items' exceptions in their list positions.
        """
        pendings = [_Pending(dataset, model, version) for dataset in datasets]
        # Caller-assembled batches bypass admission control (they are an
        # in-process/benchmark path, not the HTTP front door) but still count
        # as requests.
        with self._stats_lock:
            self.stats.n_requests += len(pendings)
        self._process_batch(pendings)
        results: list[Recommendation | Exception] = []
        for pending in pendings:
            if pending.error is not None:
                if not return_errors:
                    raise pending.error
                results.append(pending.error)
            else:
                results.append(pending.result)
        return results

    # -- admission control -------------------------------------------------------------
    def _admit(self, pending: _Pending) -> None:
        """Count the request toward the bounded pending queue, or shed it."""
        with self._stats_lock:
            self.stats.n_requests += 1
            if (
                self.max_queue_depth is not None
                and self._pending_count >= self.max_queue_depth
            ):
                self.stats.n_shed += 1
                if obs.enabled():
                    obs.emit(
                        "request_shed",
                        dataset=pending.dataset.name,
                        depth=self._pending_count,
                    )
                raise DispatcherOverloaded(
                    f"dispatcher overloaded: {self._pending_count} requests pending "
                    f"(max_queue_depth={self.max_queue_depth})",
                    retry_after=self._retry_after_hint(),
                )
            pending.admitted = True
            self._pending_count += 1
            if obs.enabled():
                obs.emit(
                    "request_admitted",
                    dataset=pending.dataset.name,
                    depth=self._pending_count,
                )
            self.stats.max_queue_depth_seen = max(
                self.stats.max_queue_depth_seen, self._pending_count
            )

    def _release(self, pendings: list[_Pending]) -> None:
        n = sum(1 for p in pendings if p.admitted)
        if n:
            with self._stats_lock:
                self._pending_count -= n
        for pending in pendings:
            pending.admitted = False

    def _retry_after_hint(self) -> float:
        """Roughly how long until the current backlog drains (clamped)."""
        depth = max(self._pending_count, 1)
        batches = depth / max(self.max_batch_size, 1)
        return min(max(batches * max(self.max_wait, 0.005) * 2.0, 0.05), 5.0)

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet answered (includes the in-flight batch)."""
        with self._stats_lock:
            return self._pending_count

    def stats_snapshot(self) -> dict:
        """Counters plus the live queue gauges (for /healthz and /metrics)."""
        with self._stats_lock:
            out = self.stats.as_dict()
            out["queue_depth"] = self._pending_count
        out["max_queue_depth"] = self.max_queue_depth
        return out

    def close(self) -> None:
        """Stop the serve loop (pending requests are still answered)."""
        if self._closed:
            return
        self._closed = True
        if self._serve_thread is not None:
            self._queue.put(_SHUTDOWN)
            self._serve_thread.join(timeout=5.0)

    # -- serve loop --------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.monotonic() + self.max_wait
            stop = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            try:
                self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the serve loop must survive
                obs.error_event("dispatcher.serve_loop", exc)
                self._fail([p for p in batch if not p.event.is_set()], exc)
            if stop:
                return

    # -- batch execution ---------------------------------------------------------------
    def _process_batch(self, batch: list[_Pending]) -> None:
        with obs.span("dispatcher.batch", attrs={"batch_size": len(batch)}):
            self._process_batch_inner(batch)

    def _process_batch_inner(self, batch: list[_Pending]) -> None:
        start = time.monotonic()
        abandoned = [pending for pending in batch if pending.abandoned]
        if abandoned:
            self._release(abandoned)
        batch = [pending for pending in batch if not pending.abandoned]
        if batch and self.max_queue_delay is not None:
            # Requests that already waited past the delay bound are shed:
            # serving them now would push the whole batch's latency further
            # past the SLO, and their callers are likely retrying anyway.
            stale = [
                pending for pending in batch
                if start - pending.enqueued_at > self.max_queue_delay
            ]
            if stale:
                with self._stats_lock:
                    self.stats.n_shed += len(stale)
                self._fail(
                    stale,
                    DispatcherOverloaded(
                        f"request waited longer than max_queue_delay "
                        f"({self.max_queue_delay * 1000.0:.0f} ms); shed",
                        retry_after=self._retry_after_hint(),
                    ),
                    count_errors=False,
                )
                batch = [pending for pending in batch if pending not in stale]
        if not batch:
            return
        with self._stats_lock:
            self.stats.record_batch(len(batch))
        groups: dict[tuple[str | None, str | None], list[_Pending]] = {}
        for pending in batch:
            groups.setdefault((pending.model_name, pending.version), []).append(pending)
        for (name, version), members in groups.items():
            try:
                servable = self.registry.resolve(name, version)
                self._serve_group(servable, members, start, len(batch))
            except Exception as exc:  # noqa: BLE001 — one group never kills the loop
                obs.error_event("dispatcher.group", exc)
                self._fail([p for p in members if not p.event.is_set()], exc)

    def _serve_group(
        self,
        servable: ServableModel,
        members: list[_Pending],
        start: float,
        batch_size: int,
    ) -> None:
        # Task routing: a dataset of the wrong task type fails individually —
        # the rest of the group is still served.
        ready: list[_Pending] = []
        for pending in members:
            if pending.dataset.task.value != servable.task:
                self._fail(
                    [pending],
                    ValueError(
                        f"model {servable.name!r} serves {servable.task} tasks; "
                        f"dataset {pending.dataset.name!r} is "
                        f"{pending.dataset.task.value}"
                    ),
                )
            else:
                ready.append(pending)
        if not ready:
            return
        decision_model = servable.model.decision_model
        try:
            score_dicts = decision_model.scores_many([p.dataset for p in ready])
            with self._stats_lock:
                self.stats.forward_passes += 1
        except Exception as exc:  # noqa: BLE001 — contained per group
            obs.error_event("dispatcher.forward_pass", exc)
            self._fail(ready, exc)
            return
        for pending, scores in zip(ready, score_dicts):
            try:
                pending.result = self._build_recommendation(
                    servable, pending, scores, start, batch_size
                )
            except Exception as exc:  # noqa: BLE001 — contained per request
                obs.error_event("dispatcher.build", exc)
                self._fail([pending], exc)
                continue
            self._release([pending])
            pending.event.set()

    def _build_recommendation(
        self,
        servable: ServableModel,
        pending: _Pending,
        scores: dict[str, float],
        start: float,
        batch_size: int,
    ) -> Recommendation:
        catalogue = servable.model.registry
        ranking = sorted(scores, key=scores.get, reverse=True)
        algorithm = first_supported_algorithm(ranking, catalogue)
        config_source = "default"
        tuned_score: float | None = None
        config = catalogue.get(algorithm).default_config()
        if self.suggest_configs and servable.model.store is not None:
            responder = servable.model.responder(
                cv=self.cv,
                tuning_max_records=self.tuning_max_records,
                random_state=self.random_state,
                metric=self.metric,
            )
            tuned = responder.tuned_best(pending.dataset, algorithm, k=1)
            if tuned:
                config, tuned_score = dict(tuned[0][0]), float(tuned[0][1])
                config_source = "tuned-store"
        return Recommendation(
            dataset=pending.dataset.name,
            fingerprint=pending.dataset.fingerprint,
            model=servable.name,
            version=servable.version,
            task=servable.task,
            algorithm=algorithm,
            config=config,
            config_source=config_source,
            tuned_score=tuned_score,
            ranking=ranking,
            scores=scores,
            latency_ms=(time.monotonic() - pending.enqueued_at) * 1000.0,
            batch_size=batch_size,
        )

    def _fail(
        self, members: list[_Pending], exc: Exception, count_errors: bool = True
    ) -> None:
        if count_errors:
            with self._stats_lock:
                self.stats.n_errors += len(members)
        self._release(members)
        for pending in members:
            pending.error = exc
            pending.event.set()

    def __enter__(self) -> "RecommendationDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
