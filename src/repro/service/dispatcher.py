"""Batched concurrent recommendation dispatcher — the request tier.

Request-time work for one ``recommend`` call is (1) meta-feature extraction,
(2) a decision-model forward pass, (3) a catalogue-constrained argmax and
(4) a configuration suggestion.  The dispatcher makes that path fast under
concurrency:

* **Micro-batching.**  Caller threads enqueue requests and block on an
  event; a single serve thread drains the queue (up to ``max_batch_size``
  requests or ``max_wait_ms``, whichever first), groups the batch by
  ``(model, version)`` snapshot, and runs ONE
  :meth:`~repro.core.architecture_search.DecisionModel.scores_matrix`
  forward pass per group instead of N scalar calls.
* **Meta-feature memoization.**  Feature extraction inside the batch goes
  through the process-wide fingerprint-keyed
  :data:`~repro.metafeatures.extractor.feature_cache`, so repeat queries for
  the same data skip Table III entirely.
* **Hot-swap safety.**  Each group resolves its registry snapshot exactly
  once; a promote landing mid-batch affects the next batch, never half of
  the current one.  Every response carries the version that produced it.
* **Tuned-config serving.**  When the resolved model carries a result store
  (async refine jobs write there), the dispatcher serves the best previously
  tuned configuration for ``(algorithm, dataset)``; otherwise the
  catalogue's default configuration.

Errors are contained per request: a bad dataset or unknown model fails that
caller only, never the serve loop.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.udr import first_supported_algorithm
from ..datasets.dataset import Dataset
from ..metafeatures.extractor import feature_cache
from .registry import ModelRegistry, ServableModel

__all__ = ["Recommendation", "DispatcherStats", "RecommendationDispatcher"]


@dataclass
class Recommendation:
    """One served answer: algorithm + configuration + provenance."""

    dataset: str
    fingerprint: str
    model: str
    version: str
    task: str
    algorithm: str
    config: dict[str, Any]
    config_source: str  # "tuned-store" or "default"
    tuned_score: float | None
    ranking: list[str]
    scores: dict[str, float]
    latency_ms: float
    batch_size: int

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "model": self.model,
            "version": self.version,
            "task": self.task,
            "algorithm": self.algorithm,
            "config": dict(self.config),
            "config_source": self.config_source,
            "tuned_score": self.tuned_score,
            "ranking": list(self.ranking),
            "scores": {k: round(v, 6) for k, v in self.scores.items()},
            "latency_ms": round(self.latency_ms, 3),
            "batch_size": self.batch_size,
        }


@dataclass
class DispatcherStats:
    """Counters the dispatcher accumulates across its lifetime."""

    n_requests: int = 0
    n_batches: int = 0
    n_batched_requests: int = 0
    largest_batch: int = 0
    n_errors: int = 0
    forward_passes: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.n_batched_requests / self.n_batches if self.n_batches else 0.0

    def as_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "n_errors": self.n_errors,
            "forward_passes": self.forward_passes,
            "feature_cache": feature_cache.stats.as_dict(),
        }


class _Pending:
    """One enqueued request and its completion slot."""

    __slots__ = (
        "dataset", "model_name", "version", "event", "result", "error",
        "abandoned", "enqueued_at",
    )

    def __init__(self, dataset: Dataset, model_name: str | None, version: str | None) -> None:
        self.dataset = dataset
        self.model_name = model_name
        self.version = version
        self.event = threading.Event()
        self.result: Recommendation | None = None
        self.error: Exception | None = None
        self.abandoned = False  # caller timed out; skip the work
        self.enqueued_at = time.monotonic()


_SHUTDOWN = object()


class RecommendationDispatcher:
    """Concurrent, micro-batched front door over a :class:`ModelRegistry`.

    ``cv`` / ``tuning_max_records`` / ``random_state`` / ``metric`` describe
    the tuning protocol whose stored results the dispatcher serves; they must
    match the refine jobs' protocol for tuned configurations to be found (a
    refine run under a different metric lands in a different store shard).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        batching: bool = True,
        suggest_configs: bool = True,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        metric: str | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_wait = max(0.0, float(max_wait_ms)) / 1000.0
        self.batching = bool(batching)
        self.suggest_configs = bool(suggest_configs)
        self.cv = cv
        self.tuning_max_records = tuning_max_records
        self.random_state = random_state
        self.metric = metric
        self.stats = DispatcherStats()
        self._stats_lock = threading.Lock()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._closed = False
        self._serve_thread: threading.Thread | None = None
        if self.batching:
            self._serve_thread = threading.Thread(
                target=self._serve_loop, name="recommend-dispatcher", daemon=True
            )
            self._serve_thread.start()

    # -- public API --------------------------------------------------------------------
    def recommend(
        self,
        dataset: Dataset,
        model: str | None = None,
        version: str | None = None,
        timeout: float | None = 30.0,
    ) -> Recommendation:
        """Blocking recommendation for one dataset (thread-safe).

        With batching enabled the request joins the next micro-batch; without
        it the request is served inline on the calling thread.
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        with self._stats_lock:
            self.stats.n_requests += 1
        if not self.batching:
            pending = _Pending(dataset, model, version)
            self._process_batch([pending])
            if pending.error is not None:
                raise pending.error
            assert pending.result is not None
            return pending.result
        pending = _Pending(dataset, model, version)
        self._queue.put(pending)
        if not pending.event.wait(timeout):
            # Best-effort: the serve loop drops abandoned requests it has not
            # started yet, so retrying clients don't amplify the overload.
            pending.abandoned = True
            raise TimeoutError(
                f"recommendation for {dataset.name!r} timed out after {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def recommend_many(
        self,
        datasets: list[Dataset],
        model: str | None = None,
        version: str | None = None,
        return_errors: bool = False,
    ) -> list[Recommendation | Exception]:
        """Serve a caller-assembled batch directly (one forward pass).

        With ``return_errors=False`` (the default) the first failed item
        raises and the batch's other answers are discarded; pass
        ``return_errors=True`` to get per-item results, with the failing
        items' exceptions in their list positions.
        """
        pendings = [_Pending(dataset, model, version) for dataset in datasets]
        with self._stats_lock:
            self.stats.n_requests += len(pendings)
        self._process_batch(pendings)
        results: list[Recommendation | Exception] = []
        for pending in pendings:
            if pending.error is not None:
                if not return_errors:
                    raise pending.error
                results.append(pending.error)
            else:
                results.append(pending.result)
        return results

    def close(self) -> None:
        """Stop the serve loop (pending requests are still answered)."""
        if self._closed:
            return
        self._closed = True
        if self._serve_thread is not None:
            self._queue.put(_SHUTDOWN)
            self._serve_thread.join(timeout=5.0)

    # -- serve loop --------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.monotonic() + self.max_wait
            stop = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            try:
                self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the serve loop must survive
                self._fail([p for p in batch if not p.event.is_set()], exc)
            if stop:
                return

    # -- batch execution ---------------------------------------------------------------
    def _process_batch(self, batch: list[_Pending]) -> None:
        start = time.monotonic()
        batch = [pending for pending in batch if not pending.abandoned]
        if not batch:
            return
        with self._stats_lock:
            self.stats.n_batches += 1
            self.stats.n_batched_requests += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        groups: dict[tuple[str | None, str | None], list[_Pending]] = {}
        for pending in batch:
            groups.setdefault((pending.model_name, pending.version), []).append(pending)
        for (name, version), members in groups.items():
            try:
                servable = self.registry.resolve(name, version)
                self._serve_group(servable, members, start, len(batch))
            except Exception as exc:  # noqa: BLE001 — one group never kills the loop
                self._fail([p for p in members if not p.event.is_set()], exc)

    def _serve_group(
        self,
        servable: ServableModel,
        members: list[_Pending],
        start: float,
        batch_size: int,
    ) -> None:
        # Task routing: a dataset of the wrong task type fails individually —
        # the rest of the group is still served.
        ready: list[_Pending] = []
        for pending in members:
            if pending.dataset.task.value != servable.task:
                self._fail(
                    [pending],
                    ValueError(
                        f"model {servable.name!r} serves {servable.task} tasks; "
                        f"dataset {pending.dataset.name!r} is "
                        f"{pending.dataset.task.value}"
                    ),
                )
            else:
                ready.append(pending)
        if not ready:
            return
        decision_model = servable.model.decision_model
        try:
            score_dicts = decision_model.scores_many([p.dataset for p in ready])
            with self._stats_lock:
                self.stats.forward_passes += 1
        except Exception as exc:  # noqa: BLE001 — contained per group
            self._fail(ready, exc)
            return
        for pending, scores in zip(ready, score_dicts):
            try:
                pending.result = self._build_recommendation(
                    servable, pending, scores, start, batch_size
                )
            except Exception as exc:  # noqa: BLE001 — contained per request
                self._fail([pending], exc)
                continue
            pending.event.set()

    def _build_recommendation(
        self,
        servable: ServableModel,
        pending: _Pending,
        scores: dict[str, float],
        start: float,
        batch_size: int,
    ) -> Recommendation:
        catalogue = servable.model.registry
        ranking = sorted(scores, key=scores.get, reverse=True)
        algorithm = first_supported_algorithm(ranking, catalogue)
        config_source = "default"
        tuned_score: float | None = None
        config = catalogue.get(algorithm).default_config()
        if self.suggest_configs and servable.model.store is not None:
            responder = servable.model.responder(
                cv=self.cv,
                tuning_max_records=self.tuning_max_records,
                random_state=self.random_state,
                metric=self.metric,
            )
            tuned = responder.tuned_best(pending.dataset, algorithm, k=1)
            if tuned:
                config, tuned_score = dict(tuned[0][0]), float(tuned[0][1])
                config_source = "tuned-store"
        return Recommendation(
            dataset=pending.dataset.name,
            fingerprint=pending.dataset.fingerprint,
            model=servable.name,
            version=servable.version,
            task=servable.task,
            algorithm=algorithm,
            config=config,
            config_source=config_source,
            tuned_score=tuned_score,
            ranking=ranking,
            scores=scores,
            latency_ms=(time.monotonic() - pending.enqueued_at) * 1000.0,
            batch_size=batch_size,
        )

    def _fail(self, members: list[_Pending], exc: Exception) -> None:
        with self._stats_lock:
            self.stats.n_errors += len(members)
        for pending in members:
            pending.error = exc
            pending.event.set()

    def __enter__(self) -> "RecommendationDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
