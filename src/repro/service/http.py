"""Stdlib HTTP/JSON front end over the serving subsystem.

:class:`RecommendationService` composes the three lower tiers — a
:class:`~repro.service.registry.ModelRegistry`, a
:class:`~repro.service.dispatcher.RecommendationDispatcher` and a
:class:`~repro.service.jobs.FitJobQueue` — and exposes them over plain
``http.server`` (no third-party web framework):

========  =====================  ==================================================
Method    Path                   Meaning
========  =====================  ==================================================
GET       ``/healthz``           liveness + registry/dispatcher/job counters
GET       ``/metrics``           per-endpoint counters, latency quantiles, QPS,
                                 batch-size histogram, cache hit rates (pool
                                 deployments answer with the all-worker aggregate)
GET       ``/models``            registry listing (names, versions, tasks, labels)
GET       ``/models/<n>/export`` compile ``<n>``'s decision model to artifacts
                                 (``?version=`` pins one; default: current)
POST      ``/models/promote``    ``{"name", "version"}`` — atomic hot-swap
POST      ``/models/rollback``   ``{"name"}`` — flip back to the previous version
POST      ``/recommend``         ``{"dataset": {...}, "model"?, "version"?}``
GET       ``/jobs``              job table (``?status=queued|running|done|failed``)
GET       ``/jobs/<id>``         one job
POST      ``/jobs``              ``{"kind": "refine"|"fit", ...}`` — async work
========  =====================  ==================================================

Overload behaviour: when the dispatcher's admission control sheds a request
(bounded pending queue), ``/recommend`` answers ``429`` with a ``Retry-After``
header; a request that waited out its dispatcher timeout answers ``503``.
Handlers speak HTTP/1.1 with explicit ``Content-Length`` on every response,
so client connections are kept alive across requests.

Datasets travel as JSON: ``{"name", "task"?, "numeric"?: [[...]],
"categorical"?: [[...]], "target": [...]}``; missing numeric cells are sent
as ``null`` and become NaN (pipeline-serving models impute them).  Fit jobs
accept ``"pipelines": true`` to train over the pipeline-wrapped catalogue.
The server is a ``ThreadingHTTPServer``: each connection gets a thread, and
concurrent ``/recommend`` bodies meet in the dispatcher's micro-batches.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

import numpy as np

from .. import obs
from ..core.dmd import DecisionMakingModelDesigner
from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..learners.regression_registry import registry_for_task
from .dispatcher import DispatcherOverloaded, RecommendationDispatcher
from .jobs import FitJobQueue
from .metrics import MetricsDirectory, ServiceMetrics, aggregate_worker_payloads
from .registry import ModelRegistry

__all__ = [
    "ServiceError",
    "dataset_from_json",
    "route_label",
    "RecommendationService",
    "ServiceServer",
    "make_http_server",
    "serve_in_thread",
]


class ServiceError(Exception):
    """A request error carrying its HTTP status code.

    ``retry_after`` (seconds) is surfaced as a ``Retry-After`` header so
    well-behaved clients back off instead of hammering an overloaded server.
    """

    def __init__(self, status: int, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def route_label(path: str) -> str:
    """Collapse a request path into a bounded metrics label.

    Dynamic segments (job ids) are folded into a placeholder so the metrics
    table cannot grow one entry per job; unknown paths share one label.
    """
    path = path.partition("?")[0]
    if path.startswith("/jobs/"):
        return "/jobs/{id}"
    if path.startswith("/trace/"):
        return "/trace/{id}"
    if path.startswith("/models/") and path.endswith("/export"):
        return "/models/{name}/export"
    known = {
        "/healthz", "/metrics", "/models", "/models/promote",
        "/models/rollback", "/recommend", "/jobs",
    }
    return path if path in known else "(unknown)"


def dataset_from_json(payload: Any) -> Dataset:
    """Build a :class:`Dataset` from its JSON wire format (400 on bad input).

    A payload without a ``name`` gets a content-derived one
    (``ds-<fingerprint prefix>``), so anonymous repeat submissions of the
    same data share store contexts (tuned-config serving, refine shards)
    instead of all colliding under one placeholder name.
    """
    if not isinstance(payload, dict):
        raise ServiceError(400, "dataset must be a JSON object")
    name = payload.get("name")
    target = payload.get("target")
    if not isinstance(target, list) or not target:
        raise ServiceError(400, "dataset.target must be a non-empty list")
    n = len(target)
    numeric = payload.get("numeric") or []
    categorical = payload.get("categorical") or []
    if numeric:
        # JSON has no NaN literal; clients send missing numeric cells as
        # null.  Map them to NaN so messy datasets are first-class on the
        # wire (pipeline-serving models impute them; bare models crash-score
        # honestly).
        numeric = [
            [np.nan if value is None else value for value in row]
            if isinstance(row, list)
            else row
            for row in numeric
        ]
    try:
        numeric_arr = (
            np.asarray(numeric, dtype=np.float64) if numeric else np.zeros((n, 0))
        )
        categorical_arr = (
            np.asarray(categorical, dtype=object)
            if categorical
            else np.zeros((n, 0), dtype=object)
        )
        dataset = Dataset(
            name=str(name) if name is not None else "request",
            numeric=numeric_arr,
            categorical=categorical_arr,
            target=np.asarray(target),
            task=payload.get("task", "classification"),
        )
        if name is None:
            dataset.name = f"ds-{dataset.fingerprint[:12]}"
        return dataset
    except ServiceError:
        raise
    except Exception as exc:  # noqa: BLE001 — surface malformed payloads as 400s
        obs.error_event("http.dataset", exc)
        raise ServiceError(400, f"invalid dataset: {exc}") from exc


class RecommendationService:
    """The composed serving subsystem behind one registry directory."""

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        fit_workers: int = 1,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        metric: str | None = None,
        max_queue_depth: int | None = None,
        max_queue_delay_ms: float | None = None,
        worker_id: int | str | None = None,
        metrics_dir: str | Path | None = None,
    ) -> None:
        self.registry = (
            registry if isinstance(registry, ModelRegistry) else ModelRegistry(registry)
        )
        self.dispatcher = RecommendationDispatcher(
            self.registry,
            batching=batching,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            metric=metric,
            max_queue_depth=max_queue_depth,
            max_queue_delay_ms=max_queue_delay_ms,
        )
        self.fit_jobs = FitJobQueue(self.registry, n_workers=fit_workers)
        self.worker_id = worker_id if worker_id is not None else os.getpid()
        self.metrics = ServiceMetrics(worker_id=self.worker_id)
        # When set, this process is one worker of a pre-forked pool: /metrics
        # answers with the aggregate over every worker's flushed payload.
        self.metrics_store = MetricsDirectory(metrics_dir) if metrics_dir else None
        self.started_at = time.time()

    def close(self) -> None:
        self.flush_metrics()
        self.dispatcher.close()
        self.fit_jobs.shutdown(wait=False)

    # -- endpoint payloads (shared by HTTP handler and in-process callers) ---------------
    def healthz_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "registry": self.registry.stats(),
            "dispatcher": self.dispatcher.stats_snapshot(),
            "jobs": self.fit_jobs.stats(),
        }

    def metrics_payload(self, include_samples: bool = False) -> dict:
        """This process's full metrics payload (one worker's view)."""
        return {
            "http": self.metrics.snapshot(include_samples=include_samples),
            "dispatcher": self.dispatcher.stats_snapshot(),
            "registry": self.registry.stats(),
            "jobs": self.fit_jobs.stats(),
        }

    def flush_metrics(self) -> None:
        """Write this worker's payload into the pool's metrics directory."""
        if self.metrics_store is not None:
            self.metrics_store.write(
                self.worker_id, self.metrics_payload(include_samples=True)
            )

    def metrics_response(self) -> dict:
        """The ``GET /metrics`` body: per-process, or pool-wide aggregate."""
        if self.metrics_store is None:
            own = self.metrics_payload(include_samples=True)
            aggregate = aggregate_worker_payloads([own])
            response = {"scope": "process", **aggregate}
        else:
            self.flush_metrics()
            payloads = self.metrics_store.read_all()
            aggregate = aggregate_worker_payloads(payloads)
            response = {"scope": "pool", **aggregate}
        if obs.enabled():
            # Computed once over the shared journal, *after* aggregation —
            # pool workers share one journal dir, so folding counts into each
            # worker's payload would double-count every event.
            response["events"] = obs.event_counts()
        return response

    def trace_payload(self, trace_id: str) -> dict:
        """The ``GET /trace/<id>`` body: the assembled span tree."""
        from ..obs.report import build_traces, span_tree_payload

        journal = obs.journal_dir()
        if journal is None:
            raise ServiceError(404, "tracing is not configured (no journal)")
        traces = build_traces(obs.read_events(journal))
        tree = traces.get(trace_id)
        if tree is None:
            raise ServiceError(404, f"unknown trace {trace_id!r}")
        return {
            "trace_id": trace_id,
            "coverage": round(tree.coverage(), 4),
            "roots": [span_tree_payload(root) for root in tree.roots],
        }

    def models_payload(self) -> dict:
        return {"models": self.registry.describe()}

    def export_payload(self, name: str, version: str | None = None) -> dict:
        """Compile ``name``'s decision model to on-disk artifacts (tentpole)."""
        try:
            return self.registry.export(name, version)
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, str(exc)) from exc

    def recommend_payload(self, body: Any) -> dict:
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        dataset = dataset_from_json(body.get("dataset"))
        try:
            timeout = float(body.get("timeout", 30.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"invalid timeout: {body.get('timeout')!r}") from exc
        try:
            recommendation = self.dispatcher.recommend(
                dataset,
                model=body.get("model"),
                version=body.get("version"),
                timeout=timeout,
            )
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc
        except DispatcherOverloaded as exc:
            raise ServiceError(429, str(exc), retry_after=exc.retry_after) from exc
        except TimeoutError as exc:
            raise ServiceError(503, str(exc), retry_after=1.0) from exc
        except (ValueError, RuntimeError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return recommendation.as_dict()

    def promote_payload(self, body: Any) -> dict:
        if not isinstance(body, dict) or "name" not in body or "version" not in body:
            raise ServiceError(400, "promote needs {'name', 'version'}")
        try:
            self.registry.promote(str(body["name"]), str(body["version"]))
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc
        return {
            "name": body["name"],
            "current_version": self.registry.current_version(str(body["name"])),
        }

    def rollback_payload(self, body: Any) -> dict:
        if not isinstance(body, dict) or "name" not in body:
            raise ServiceError(400, "rollback needs {'name'}")
        try:
            version = self.registry.rollback(str(body["name"]))
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc
        return {"name": body["name"], "current_version": version}

    def jobs_payload(self, status: str | None = None) -> dict:
        try:
            records = self.fit_jobs.jobs(status)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc
        return {"jobs": [record.as_dict() for record in records]}

    def job_payload(self, job_id: str) -> dict:
        try:
            return self.fit_jobs.get(job_id).as_dict()
        except KeyError as exc:
            raise ServiceError(404, str(exc)) from exc

    def submit_job_payload(self, body: Any) -> dict:
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        kind = body.get("kind")
        if kind == "refine":
            if "model" not in body:
                raise ServiceError(400, "refine jobs need {'model', 'dataset'}")
            dataset = dataset_from_json(body.get("dataset"))
            job_id = self._submit(
                self.fit_jobs.submit_refine,
                str(body["model"]),
                dataset,
                version=body.get("version"),
                time_limit=body.get("time_limit"),
                max_evaluations=body.get("max_evaluations", 30),
                cv=self.dispatcher.cv,
                tuning_max_records=self.dispatcher.tuning_max_records,
                # Default to the dispatcher's metric so the refined shard is
                # the one /recommend reads; an explicit body metric still
                # wins (its results serve only a matching dispatcher).
                random_state=self.dispatcher.random_state,
                metric=body.get("metric", self.dispatcher.metric),
            )
        elif kind == "fit":
            if "model" not in body or "datasets" not in body:
                raise ServiceError(400, "fit jobs need {'model', 'datasets'}")
            datasets = body.get("datasets")
            if not isinstance(datasets, list) or not datasets:
                raise ServiceError(400, "fit jobs need a non-empty 'datasets' list")
            parsed = [dataset_from_json(entry) for entry in datasets]
            try:
                task = resolve_task(body.get("task") or parsed[0].task).value
            except ValueError as exc:
                raise ServiceError(400, str(exc)) from exc
            dmd_options = body.get("dmd")
            if dmd_options is not None and not isinstance(dmd_options, dict):
                raise ServiceError(400, "'dmd' must be an object of DMD options")
            algorithms = body.get("algorithms")
            algorithm_registry = None
            if algorithms is not None:
                try:
                    algorithm_registry = registry_for_task(task).subset(list(algorithms))
                except (KeyError, ValueError) as exc:
                    raise ServiceError(400, f"invalid algorithms/task: {exc}") from exc
            try:
                dmd = (
                    DecisionMakingModelDesigner(task=task, **dmd_options)
                    if dmd_options
                    else None
                )
            except TypeError as exc:
                raise ServiceError(400, f"invalid dmd options: {exc}") from exc
            job_id = self._submit(
                self.fit_jobs.submit_fit,
                str(body["model"]),
                parsed,
                task=task,
                dmd=dmd,
                algorithm_registry=algorithm_registry,
                promote=bool(body.get("promote", True)),
                cv=int(body.get("cv", 3)),
                max_records=body.get("max_records", 250),
                metric=body.get("metric"),
                pipelines=bool(body.get("pipelines", False)),
            )
        else:
            raise ServiceError(400, f"unknown job kind {kind!r} (use 'fit' or 'refine')")
        return self.fit_jobs.get(job_id).as_dict()

    @staticmethod
    def _submit(submit_fn, *args, **kwargs) -> str:
        """Map submission-time validation errors (bad names, empty dataset
        lists) to 400s; only errors inside the running job become job
        failures."""
        try:
            return submit_fn(*args, **kwargs)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its :class:`RecommendationService`.

    ``listen_socket`` lets a pre-forked worker adopt an already-listening
    socket (created by the pool parent, or bound with ``SO_REUSEPORT``)
    instead of binding its own — the server then only accepts on it.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        handler,
        service: RecommendationService,
        quiet: bool = True,
        listen_socket=None,
    ):
        self.service = service
        self.quiet = quiet
        if listen_socket is None:
            super().__init__(address, handler)
        else:
            super().__init__(address, handler, bind_and_activate=False)
            self.socket.close()  # drop the unbound placeholder socket
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()[:2]
            # Skip HTTPServer.server_bind (getfqdn + rebind); record the
            # name/port the way it would have.
            host, port = self.server_address
            self.server_name = host
            self.server_port = port


class _ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
        self.end_headers()
        self.wfile.write(body)
        elapsed = time.monotonic() - getattr(self, "_started", time.monotonic())
        self.server.service.metrics.observe(
            self.command, route_label(self.path), status, elapsed
        )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc

    def _dispatch(self, fn) -> None:
        with obs.attach_header(self.headers.get(obs.TRACE_HEADER)):
            with obs.span(
                "service.request",
                attrs={"route": route_label(self.path), "method": self.command},
            ):
                try:
                    payload = fn()
                except ServiceError as exc:
                    self._send_json(
                        exc.status, {"error": str(exc)}, retry_after=exc.retry_after
                    )
                except Exception as exc:  # noqa: BLE001 — one request never kills the server
                    obs.error_event("service.dispatch", exc)
                    self._send_json(500, {"error": f"internal error: {exc}"})
                else:
                    self._send_json(200, payload)

    # -- routes ------------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._started = time.monotonic()
        service = self.server.service
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._dispatch(service.healthz_payload)
        elif path == "/metrics":
            self._dispatch(service.metrics_response)
        elif path == "/models":
            self._dispatch(service.models_payload)
        elif path == "/jobs":
            status = None
            for part in query.split("&"):
                if part.startswith("status="):
                    status = part.split("=", 1)[1] or None
            self._dispatch(lambda: service.jobs_payload(status))
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch(lambda: service.job_payload(job_id))
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            self._dispatch(lambda: service.trace_payload(trace_id))
        elif path.startswith("/models/") and path.endswith("/export"):
            name = path[len("/models/"):-len("/export")]
            version = None
            for part in query.split("&"):
                if part.startswith("version="):
                    version = part.split("=", 1)[1] or None
            self._dispatch(lambda: service.export_payload(name, version))
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._started = time.monotonic()
        service = self.server.service
        path = self.path.partition("?")[0]
        routes = {
            "/recommend": service.recommend_payload,
            "/models/promote": service.promote_payload,
            "/models/rollback": service.rollback_payload,
            "/jobs": service.submit_job_payload,
        }
        handler = routes.get(path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        self._dispatch(lambda: handler(self._read_body()))


def make_http_server(
    service: RecommendationService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    listen_socket=None,
) -> ServiceServer:
    """Bind the HTTP front end (``port=0`` picks an ephemeral port).

    The caller owns the lifecycle: ``serve_forever()`` (often on a thread),
    then ``shutdown()``/``server_close()`` and ``service.close()``.  Pass
    ``listen_socket`` to serve on an existing listening socket (pre-forked
    workers) instead of binding ``host:port``.
    """
    return ServiceServer(
        (host, port), _ServiceHandler, service, quiet=quiet, listen_socket=listen_socket
    )


def serve_in_thread(
    service: RecommendationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ServiceServer, threading.Thread]:
    """Convenience for tests/examples: serve on a daemon thread, return both."""
    server = make_http_server(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
