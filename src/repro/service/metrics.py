"""Lock-cheap serving metrics — the observability tier of the subsystem.

Every HTTP response is recorded into a :class:`ServiceMetrics` instance:
per-endpoint request/outcome counters, a bounded latency reservoir per
endpoint (p50/p95/p99 without unbounded memory), and a 60-second ring of
per-second counts for windowed QPS.  The cost per request is one short lock
acquisition and a handful of integer updates, so the recorder can sit on the
hot path of every request without showing up in the latency it measures.

Multi-process aggregation (the pre-forked pool in
:mod:`repro.service.pool`) works through files rather than shared memory:
each worker periodically flushes its full metrics payload — including the
raw latency reservoir samples — into a :class:`MetricsDirectory`, and the
worker that answers ``GET /metrics`` merges every sibling's flushed payload
with :func:`aggregate_worker_payloads`.  Because the reservoirs travel with
the payloads, the aggregate quantiles are computed over the union of
samples, not averaged per worker (averaging percentiles is wrong).

Outcome classes, used consistently across the module:

==============  =====================================================
``n_ok``        2xx/3xx responses
``n_shed``      429 — admission control turned the request away
``n_client``    other 4xx — the caller's mistake
``n_failed``    5xx or transport-level errors (status 0)
==============  =====================================================
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "LatencyReservoir",
    "ServiceMetrics",
    "MetricsDirectory",
    "aggregate_worker_payloads",
    "quantile",
]

QPS_WINDOW_SECONDS = 60


def quantile(samples: list[float], q: float) -> float | None:
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation.

    An empty sample set has no quantiles: the result is ``None``, never a
    fabricated 0.0 that a dashboard would read as a measured latency.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _quantile_ms(samples: list[float], q: float) -> float | None:
    """A reservoir quantile in rounded milliseconds (``None`` when empty)."""
    value = quantile(samples, q)
    return round(value * 1000.0, 3) if value is not None else None


class LatencyReservoir:
    """Bounded uniform sample of a value stream (Vitter's algorithm R).

    Keeps at most ``size`` values; every value seen so far has equal
    probability of being in the sample, so quantiles computed from it are
    unbiased estimates of the stream's quantiles.  Not thread-safe on its
    own — :class:`ServiceMetrics` serialises access under its lock.
    """

    __slots__ = ("size", "count", "total", "max_value", "_samples", "_rng")

    def __init__(self, size: int = 512, seed: int = 0) -> None:
        self.size = int(size)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._samples) < self.size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.size:
                self._samples[slot] = value

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def summary(self, include_samples: bool = False) -> dict:
        out = {
            "count": self.count,
            "mean_ms": round(self.total / self.count * 1000.0, 3) if self.count else None,
            "max_ms": round(self.max_value * 1000.0, 3) if self.count else None,
            "p50_ms": _quantile_ms(self._samples, 0.50),
            "p95_ms": _quantile_ms(self._samples, 0.95),
            "p99_ms": _quantile_ms(self._samples, 0.99),
        }
        if include_samples:
            out["samples_ms"] = [round(s * 1000.0, 3) for s in self._samples]
        return out


class _EndpointRecord:
    __slots__ = ("n_requests", "n_ok", "n_shed", "n_client", "n_failed", "latency")

    def __init__(self, reservoir_size: int, seed: int) -> None:
        self.n_requests = 0
        self.n_ok = 0
        self.n_shed = 0
        self.n_client = 0
        self.n_failed = 0
        self.latency = LatencyReservoir(reservoir_size, seed=seed)


def _classify(status: int) -> str:
    if status == 429:
        return "n_shed"
    if status == 0 or status >= 500:
        return "n_failed"
    if status >= 400:
        return "n_client"
    return "n_ok"


class ServiceMetrics:
    """Per-process request metrics: counters, latency reservoirs, QPS ring."""

    def __init__(
        self,
        worker_id: int | str | None = None,
        reservoir_size: int = 512,
        qps_window: int = QPS_WINDOW_SECONDS,
    ) -> None:
        self.worker_id = worker_id
        self.reservoir_size = int(reservoir_size)
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointRecord] = {}
        self._window = int(qps_window)
        self._ring = [0] * self._window
        self._ring_second = int(time.time())

    # -- recording ---------------------------------------------------------------------
    def observe(self, method: str, route: str, status: int, seconds: float) -> None:
        """Record one finished request (called once per HTTP response)."""
        key = f"{method} {route}"
        outcome = _classify(int(status))
        with self._lock:
            record = self._endpoints.get(key)
            if record is None:
                record = self._endpoints[key] = _EndpointRecord(
                    self.reservoir_size, seed=len(self._endpoints)
                )
            record.n_requests += 1
            setattr(record, outcome, getattr(record, outcome) + 1)
            record.latency.add(max(0.0, float(seconds)))
            now_second = int(time.time())
            self._advance_ring(now_second)
            self._ring[now_second % self._window] += 1

    def _advance_ring(self, now_second: int) -> None:
        """Zero the ring slots for the seconds skipped since the last event."""
        steps = now_second - self._ring_second
        if steps <= 0:
            return
        for offset in range(1, min(steps, self._window) + 1):
            self._ring[(self._ring_second + offset) % self._window] = 0
        self._ring_second = now_second

    # -- reading -----------------------------------------------------------------------
    def snapshot(self, include_samples: bool = False) -> dict:
        """A JSON-safe view of everything recorded so far."""
        now = time.time()
        with self._lock:
            self._advance_ring(int(now))
            window_count = sum(self._ring)
            endpoints = {}
            totals = {"n_requests": 0, "n_ok": 0, "n_shed": 0, "n_client": 0, "n_failed": 0}
            for key, record in sorted(self._endpoints.items()):
                endpoints[key] = {
                    "n_requests": record.n_requests,
                    "n_ok": record.n_ok,
                    "n_shed": record.n_shed,
                    "n_client_errors": record.n_client,
                    "n_failed": record.n_failed,
                    "latency": record.latency.summary(include_samples=include_samples),
                }
                totals["n_requests"] += record.n_requests
                totals["n_ok"] += record.n_ok
                totals["n_shed"] += record.n_shed
                totals["n_client"] += record.n_client
                totals["n_failed"] += record.n_failed
        uptime = max(now - self.started_at, 1e-9)
        return {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "uptime_seconds": round(uptime, 3),
            "n_requests": totals["n_requests"],
            "n_ok": totals["n_ok"],
            "n_shed": totals["n_shed"],
            "n_client_errors": totals["n_client"],
            "n_failed": totals["n_failed"],
            "qps": {
                "lifetime": round(totals["n_requests"] / uptime, 3),
                f"window_{self._window}s": round(window_count / self._window, 3),
            },
            "endpoints": endpoints,
        }


# -- multi-process aggregation -----------------------------------------------------------


class MetricsDirectory:
    """File-based exchange of per-worker metrics payloads.

    Each worker owns ``worker-<id>.json`` (written via a temp file +
    ``os.replace`` so readers never parse a torn write); any worker — or the
    parent pool — reads every file to build the aggregate view.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def write(self, worker_id: int | str, payload: dict) -> None:
        target = self.path / f"worker-{worker_id}.json"
        tmp = target.with_name(target.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, target)

    def read_all(self) -> list[dict]:
        payloads = []
        for entry in sorted(self.path.glob("worker-*.json")):
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # mid-rotation or corrupt: skip, never fail /metrics
            if isinstance(payload, dict):
                payloads.append(payload)
        return payloads


# Keys whose aggregate is the max across workers, not the sum.
_MAX_KEYS = {
    "largest_batch",
    "max_queue_depth_seen",
    "models",
    "cached_models",
    "uptime_seconds",
}
# Keys that are identifiers/config, not additive metrics.
_SKIP_KEYS = {"worker_id", "pid", "started_at", "max_queue_depth", "mean_batch_size"}


def _merge_numeric(payloads: list[dict]) -> dict:
    """Generic recursive merge: numbers sum (or max for _MAX_KEYS), dicts recurse."""
    merged: dict = {}
    for payload in payloads:
        for key, value in payload.items():
            if key in _SKIP_KEYS:
                continue
            if isinstance(value, dict):
                merged[key] = _merge_numeric([merged.get(key, {}), value])
            elif isinstance(value, bool):
                merged.setdefault(key, value)
            elif isinstance(value, (int, float)):
                if key in _MAX_KEYS:
                    merged[key] = max(merged.get(key, value), value)
                else:
                    merged[key] = merged.get(key, 0) + value
            else:
                merged.setdefault(key, value)
    return merged


def _merge_endpoint_latency(summaries: Iterable[dict]) -> dict:
    """Merge latency summaries through their reservoir samples (union quantiles)."""
    samples: list[float] = []
    count = 0
    total_ms = 0.0
    max_ms = 0.0
    for summary in summaries:
        count += summary.get("count", 0)
        total_ms += (summary.get("mean_ms") or 0.0) * summary.get("count", 0)
        max_ms = max(max_ms, summary.get("max_ms") or 0.0)
        samples.extend(summary.get("samples_ms") or [])

    def merged_quantile(q: float) -> float | None:
        value = quantile(samples, q)
        return round(value, 3) if value is not None else None

    return {
        "count": count,
        "mean_ms": round(total_ms / count, 3) if count else None,
        "max_ms": round(max_ms, 3) if count else None,
        "p50_ms": merged_quantile(0.50),
        "p95_ms": merged_quantile(0.95),
        "p99_ms": merged_quantile(0.99),
    }


def _aggregate_http(snapshots: list[dict]) -> dict:
    endpoint_keys: list[str] = []
    for snap in snapshots:
        for key in snap.get("endpoints", {}):
            if key not in endpoint_keys:
                endpoint_keys.append(key)
    endpoints = {}
    for key in sorted(endpoint_keys):
        members = [s["endpoints"][key] for s in snapshots if key in s.get("endpoints", {})]
        merged = _merge_numeric([{k: v for k, v in m.items() if k != "latency"} for m in members])
        merged["latency"] = _merge_endpoint_latency(m.get("latency", {}) for m in members)
        endpoints[key] = merged
    totals = _merge_numeric(
        [{k: v for k, v in s.items() if k not in ("endpoints", "qps")} for s in snapshots]
    )
    uptime = max((s.get("uptime_seconds", 0.0) for s in snapshots), default=0.0)
    window_key = next(
        (k for s in snapshots for k in s.get("qps", {}) if k.startswith("window_")),
        f"window_{QPS_WINDOW_SECONDS}s",
    )
    totals["uptime_seconds"] = uptime
    totals["qps"] = {
        "lifetime": round(totals.get("n_requests", 0) / uptime, 3) if uptime else 0.0,
        window_key: round(
            sum(s.get("qps", {}).get(window_key, 0.0) for s in snapshots), 3
        ),
    }
    totals["endpoints"] = endpoints
    return totals


def aggregate_worker_payloads(payloads: list[dict]) -> dict:
    """Merge full per-worker ``/metrics`` payloads into one pool-wide view.

    Counters sum, gauges in ``_MAX_KEYS`` take the max, latency quantiles are
    recomputed over the union of reservoir samples, and derived ratios
    (mean batch size) are recomputed from the summed numerators/denominators.
    """
    workers = [
        {
            "worker_id": p.get("http", {}).get("worker_id"),
            "pid": p.get("http", {}).get("pid"),
            "n_requests": p.get("http", {}).get("n_requests", 0),
            "started_at": p.get("http", {}).get("started_at"),
        }
        for p in payloads
    ]
    dispatcher = _merge_numeric([p.get("dispatcher", {}) for p in payloads])
    n_batches = dispatcher.get("n_batches", 0)
    dispatcher["mean_batch_size"] = (
        round(dispatcher.get("n_batched_requests", 0) / n_batches, 2) if n_batches else 0.0
    )
    return {
        "workers": workers,
        "http": _aggregate_http([p.get("http", {}) for p in payloads]),
        "dispatcher": dispatcher,
        "registry": _merge_numeric([p.get("registry", {}) for p in payloads]),
        "jobs": _merge_numeric([p.get("jobs", {}) for p in payloads]),
    }
