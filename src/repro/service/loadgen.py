"""Synthetic load harness for the serving stack (stdlib-only).

:class:`LoadGenerator` drives a mixed request schedule against a running
service — single-process :class:`~repro.service.http.ServiceServer` or a
:class:`~repro.service.pool.ServicePool` — over persistent HTTP/1.1
keep-alive connections, one per client thread, and tallies the outcome
into a :class:`LoadReport` (throughput, latency quantiles, per-route and
per-outcome counts).

Design points that keep the measurement honest:

* **Request bodies are pre-encoded once.**  The generator runs in the
  same interpreter as the test, so any per-request JSON encoding would be
  client-side GIL work that deflates the measured server throughput.
* **The schedule is deterministic.**  Operations are interleaved by
  weight into one global sequence, then dealt round-robin to clients, so
  two runs issue exactly the same requests in nearly the same order —
  throughput comparisons (1 worker vs N) see identical workloads.
* **Transport errors retry once on a fresh connection.**  A keep-alive
  connection dies when its worker is killed; the retry distinguishes
  "connection went away" (expected during respawn) from "request
  failed" (the server answered 5xx), which stays a hard failure.

The ``completed`` property is a live counter so a driver thread can wait
for mid-run milestones (e.g. promote a new model version once half the
traffic has flowed) — the zero-downtime-swap scenario in the benchmarks.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import quantile

__all__ = ["LoadOp", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class LoadOp:
    """One operation in the traffic mix.

    ``body`` may be a dict (encoded once, up front) or pre-encoded bytes;
    ``weight`` is its relative frequency in the schedule.
    """

    method: str
    path: str
    body: Any = None
    weight: int = 1
    name: str | None = None

    @property
    def label(self) -> str:
        return self.name or f"{self.method} {self.path}"

    def encoded_body(self) -> bytes | None:
        if self.body is None:
            return None
        if isinstance(self.body, bytes):
            return self.body
        return json.dumps(self.body).encode("utf-8")


@dataclass
class LoadReport:
    """The tally of one load run."""

    n_requests: int = 0
    n_ok: int = 0
    n_shed: int = 0
    n_client_errors: int = 0
    n_failed: int = 0
    n_retried: int = 0
    duration_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    by_route: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.duration_seconds if self.duration_seconds else 0.0

    def latency_ms(self, q: float) -> float | None:
        value = quantile(self.latencies, q)
        return round(value * 1000.0, 3) if value is not None else None

    def as_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_shed": self.n_shed,
            "n_client_errors": self.n_client_errors,
            "n_failed": self.n_failed,
            "n_retried": self.n_retried,
            "duration_seconds": round(self.duration_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": self.latency_ms(0.50),
            "p95_ms": self.latency_ms(0.95),
            "p99_ms": self.latency_ms(0.99),
            "by_route": {k: dict(v) for k, v in self.by_route.items()},
        }


class _ClientTally:
    """Per-thread results, merged after the run (no cross-thread locking)."""

    __slots__ = ("counts", "latencies", "by_route", "n_retried")

    def __init__(self) -> None:
        self.counts = {"n_ok": 0, "n_shed": 0, "n_client_errors": 0, "n_failed": 0}
        self.latencies: list[float] = []
        self.by_route: dict[str, dict[str, int]] = {}
        self.n_retried = 0

    def record(self, label: str, outcome: str, latency: float) -> None:
        self.counts[outcome] += 1
        self.latencies.append(latency)
        route = self.by_route.setdefault(
            label, {"n_requests": 0, "n_ok": 0, "n_shed": 0, "n_client_errors": 0, "n_failed": 0}
        )
        route["n_requests"] += 1
        route[outcome] += 1


def _classify(status: int) -> str:
    if status == 429:
        return "n_shed"
    if status == 0 or status >= 500:
        return "n_failed"
    if status >= 400:
        return "n_client_errors"
    return "n_ok"


class LoadGenerator:
    """Drive a deterministic request schedule from ``n_clients`` threads."""

    def __init__(
        self,
        host: str,
        port: int,
        ops: list[LoadOp],
        n_clients: int = 4,
        requests_per_client: int = 50,
        timeout: float = 30.0,
    ) -> None:
        if not ops:
            raise ValueError("load schedule needs at least one LoadOp")
        if n_clients < 1 or requests_per_client < 1:
            raise ValueError("n_clients and requests_per_client must be >= 1")
        self.host = host
        self.port = int(port)
        self.n_clients = int(n_clients)
        self.timeout = float(timeout)
        # Pre-encode every body once; build the interleaved global schedule
        # and deal it round-robin so every run is identical work.
        expanded = [
            (op.method, op.path, op.encoded_body(), op.label)
            for op in ops
            for _ in range(max(1, op.weight))
        ]
        total = self.n_clients * int(requests_per_client)
        schedule = [expanded[i % len(expanded)] for i in range(total)]
        self._plans = [schedule[i :: self.n_clients] for i in range(self.n_clients)]
        self._completed = 0
        self._completed_lock = threading.Lock()

    @property
    def total_requests(self) -> int:
        return sum(len(plan) for plan in self._plans)

    @property
    def completed(self) -> int:
        """Requests finished so far (live — safe to poll from another thread)."""
        with self._completed_lock:
            return self._completed

    def wait_until(self, n: int, timeout: float = 60.0) -> bool:
        """Block until ``n`` requests completed (True) or ``timeout`` (False)."""
        deadline = time.monotonic() + timeout
        while self.completed < n:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True

    # -- execution ---------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Execute the full schedule; blocks until every client drains."""
        tallies = [_ClientTally() for _ in range(self.n_clients)]
        threads = [
            threading.Thread(
                target=self._client_loop, args=(plan, tally), daemon=True
            )
            for plan, tally in zip(self._plans, tallies)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = LoadReport(duration_seconds=time.monotonic() - started)
        for tally in tallies:
            report.n_ok += tally.counts["n_ok"]
            report.n_shed += tally.counts["n_shed"]
            report.n_client_errors += tally.counts["n_client_errors"]
            report.n_failed += tally.counts["n_failed"]
            report.n_retried += tally.n_retried
            report.latencies.extend(tally.latencies)
            for label, counts in tally.by_route.items():
                merged = report.by_route.setdefault(label, dict.fromkeys(counts, 0))
                for key, value in counts.items():
                    merged[key] += value
        report.n_requests = (
            report.n_ok + report.n_shed + report.n_client_errors + report.n_failed
        )
        return report

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _client_loop(self, plan, tally: _ClientTally) -> None:
        conn = self._connect()
        headers = {"Content-Type": "application/json"}
        for method, path, body, label in plan:
            started = time.monotonic()
            status = 0
            for attempt in (1, 2):
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    response.read()  # drain so the connection stays reusable
                    status = response.status
                    break
                except (OSError, http.client.HTTPException):
                    # Keep-alive connection died (worker swap/crash): retry
                    # once on a fresh connection, then give up honestly.
                    conn.close()
                    conn = self._connect()
                    if attempt == 1:
                        tally.n_retried += 1
                    status = 0
            tally.record(label, _classify(status), time.monotonic() - started)
            with self._completed_lock:
                self._completed += 1
        conn.close()
