"""Command-line entry point: ``python -m repro.service``.

``serve`` boots the HTTP/JSON front end over a registry directory —
single-process by default, a pre-forked multi-process pool with
``--workers N``; ``models`` prints the registry listing without starting
a server; ``export`` compiles one model version's decision model to
dependency-free artifacts next to its version directory; ``store-serve``
boots the shared result-store server that cross-host fleet workers write
their knowledge through.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time

from ..execution.store import ResultStore
from .http import RecommendationService, make_http_server
from .pool import ServicePool
from .registry import ModelRegistry, default_registry_root
from .store_server import StoreService, make_store_server

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Auto-Model recommendation-serving subsystem",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="boot the HTTP/JSON recommendation server")
    serve.add_argument(
        "--registry",
        default=None,
        help=f"model registry directory (default: {default_registry_root()})",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port"
    )
    serve.add_argument("--batch-size", type=int, default=32, dest="batch_size")
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, dest="max_wait_ms",
        help="micro-batch collection window",
    )
    serve.add_argument("--fit-workers", type=int, default=1, dest="fit_workers")
    serve.add_argument(
        "--no-batching", action="store_true", help="serve each request inline"
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 boots a pre-forked ServicePool",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None, dest="max_queue_depth",
        help="admission control: pending /recommend bound (unset = unbounded)",
    )
    serve.add_argument(
        "--max-queue-delay-ms", type=float, default=None, dest="max_queue_delay_ms",
        help="admission control: shed requests older than this before serving",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )

    models = sub.add_parser("models", help="print the registry listing as JSON")
    models.add_argument("--registry", default=None)

    export = sub.add_parser(
        "export",
        help="compile one model version's decision model to dependency-free "
        "artifacts next to the version directory",
    )
    export.add_argument("name", help="registry model name")
    export.add_argument(
        "--version", default=None, help="version to export (default: current)"
    )
    export.add_argument("--registry", default=None)

    store = sub.add_parser(
        "store-serve", help="serve a shared result store over HTTP for fleet writers"
    )
    store.add_argument("--root", required=True, help="store directory on this host")
    store.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default="sqlite",
        help="local substrate behind the served store",
    )
    store.add_argument("--host", default="127.0.0.1")
    store.add_argument(
        "--port", type=int, default=8081, help="0 binds an ephemeral port"
    )
    store.add_argument(
        "--max-inflight", type=int, default=None, dest="max_inflight",
        help="admission control: concurrent request bound (unset = unbounded)",
    )
    store.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    return parser


def _store_serve(args: argparse.Namespace) -> int:
    store = ResultStore(args.root, backend=args.backend)
    service = StoreService(store, max_inflight=args.max_inflight)
    server = make_store_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[0], server.server_address[1]
    # The smoke tests parse this line to discover an ephemeral port.
    print(f"repro-store listening on http://{host}:{port} "
          f"(root: {args.root}, backend: {args.backend})", flush=True)
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "store-serve":
        return _store_serve(args)
    registry_root = args.registry if args.registry is not None else default_registry_root()

    if args.command == "models":
        registry = ModelRegistry(registry_root)
        print(json.dumps({"registry": str(registry.root), "models": registry.describe()}, indent=2))
        return 0

    if args.command == "export":
        registry = ModelRegistry(registry_root)
        try:
            info = registry.export(args.name, args.version)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(info, indent=2))
        return 0

    if args.workers > 1:
        pool = ServicePool(
            registry_root,
            host=args.host,
            port=args.port,
            n_workers=args.workers,
            batching=not args.no_batching,
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            fit_workers=args.fit_workers,
            max_queue_depth=args.max_queue_depth,
            max_queue_delay_ms=args.max_queue_delay_ms,
            quiet=not args.verbose,
        )
        pool.start()
        # SIGTERM must tear the whole pool down, not orphan the workers.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
        # The smoke tests parse this line to discover an ephemeral port.
        print(f"repro-service listening on {pool.url} "
              f"(registry: {registry_root}, workers: {args.workers})", flush=True)
        try:
            while True:
                time.sleep(3600)
        except (KeyboardInterrupt, SystemExit):
            pass
        finally:
            pool.stop()
        return 0

    service = RecommendationService(
        ModelRegistry(registry_root),
        batching=not args.no_batching,
        max_batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        fit_workers=args.fit_workers,
        max_queue_depth=args.max_queue_depth,
        max_queue_delay_ms=args.max_queue_delay_ms,
    )
    server = make_http_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[0], server.server_address[1]
    # The smoke tests parse this line to discover an ephemeral port.
    print(f"repro-service listening on http://{host}:{port} "
          f"(registry: {registry_root})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
