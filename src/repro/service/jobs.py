"""Async fit/refine jobs — the training tier of the serving subsystem.

Serving must never block on training, so the two expensive operations run on
a background :class:`~repro.execution.jobs.JobQueue`:

* **fit** — a full ``AutoModel.fit_from_datasets`` pipeline (corpus →
  performance table → DMD), published into the :class:`ModelRegistry` as a
  new version when it completes.  With ``promote=True`` the new version goes
  live atomically; in-flight requests finish against the old snapshot.
* **refine** — a UDR tuning run (`respond`) against a served model.  The
  run executes through the shared
  :class:`~repro.execution.engine.EvaluationEngine` and persists every
  evaluation into the version's :class:`~repro.execution.store.ResultStore`,
  so as soon as the job completes the dispatcher serves the tuned
  configuration instead of the catalogue default — the refined model is
  servable without a restart.

Both job kinds inherit the queue's crash containment: a failing pipeline
marks its job ``failed`` (traceback preserved) and the workers keep serving
the queue.
"""

from __future__ import annotations

from typing import Any

from ..core.automodel import AutoModel
from ..core.dmd import DecisionMakingModelDesigner
from ..datasets.dataset import Dataset
from ..execution.jobs import JobQueue, JobRecord
from .registry import ModelRegistry

__all__ = ["FitJobQueue"]


class FitJobQueue:
    """Background fit/refine jobs feeding a :class:`ModelRegistry`.

    The refine defaults (``cv=5``, ``tuning_max_records=400``,
    ``random_state=0``) mirror the dispatcher's, so refined configurations
    land in exactly the store shard the dispatcher reads.
    """

    def __init__(self, registry: ModelRegistry, n_workers: int = 1) -> None:
        self.registry = registry
        self.queue = JobQueue(n_workers=n_workers, name="fit")

    # -- job kinds ---------------------------------------------------------------------
    def submit_fit(
        self,
        name: str,
        datasets: list[Dataset],
        task: str | None = None,
        dmd: DecisionMakingModelDesigner | None = None,
        algorithm_registry=None,
        promote: bool = True,
        cv: int = 3,
        max_records: int | None = 250,
        n_workers: int = 1,
        metric: str | None = None,
        corpus_config=None,
        pipelines: bool = False,
    ) -> str:
        """Queue a full fit pipeline; the result is a new registry version.

        ``pipelines=True`` fits (and therefore serves) the pipeline-wrapped
        catalogue — searchable imputation/scaling/encoding — which is the
        right choice when the knowledge datasets are messy (missing values,
        rare categories).  The flag is persisted in the published version's
        manifest, so later restores serve matching pipeline specs.
        """
        self.registry.validate_name(name)  # reject bad names before training
        if not datasets:
            raise ValueError("a fit job needs at least one knowledge dataset")

        def run() -> dict[str, Any]:
            model = AutoModel.fit_from_datasets(
                datasets,
                registry=algorithm_registry,
                dmd=dmd,
                corpus_config=corpus_config,
                cv=cv,
                max_records=max_records,
                n_workers=n_workers,
                task=task,
                metric=metric,
                pipelines=pipelines,
            )
            version = self.registry.publish(
                model,
                name,
                activate=promote,
                metadata={"job": "fit", "n_knowledge_datasets": len(datasets)},
            )
            return {
                "model": name,
                "version": version,
                "promoted": promote or self.registry.current_version(name) == version,
                "task": model.task.value,
                "knowledge_pairs": model.knowledge_size,
            }

        return self.queue.submit(
            "fit", run, detail={"model": name, "n_datasets": len(datasets)}
        )

    def submit_refine(
        self,
        name: str,
        dataset: Dataset,
        version: str | None = None,
        time_limit: float | None = None,
        max_evaluations: int | None = 30,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        metric: str | None = None,
    ) -> str:
        """Queue a UDR tuning run whose results become servable via the store."""
        self.registry.validate_name(name)

        def run() -> dict[str, Any]:
            servable = self.registry.resolve(name, version)
            if dataset.task.value != servable.task:
                raise ValueError(
                    f"model {name!r} serves {servable.task} tasks; dataset "
                    f"{dataset.name!r} is {dataset.task.value}"
                )
            responder = servable.model.responder(
                cv=cv,
                tuning_max_records=tuning_max_records,
                random_state=random_state,
                metric=metric,
            )
            solution = responder.respond(
                dataset,
                time_limit=time_limit,
                max_evaluations=max_evaluations,
                fit_final_estimator=False,
            )
            out = solution.summary()
            out["model"] = servable.name
            out["version"] = servable.version
            out["store_context"] = responder.store_context(dataset, solution.algorithm)
            return out

        return self.queue.submit(
            "refine", run, detail={"model": name, "dataset": dataset.name}
        )

    # -- passthroughs ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        return self.queue.get(job_id)

    def jobs(self, status: str | None = None) -> list[JobRecord]:
        return self.queue.jobs(status)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        return self.queue.wait(job_id, timeout)

    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    def stats(self) -> dict:
        out = self.queue.stats.as_dict()
        counts = self.queue.counts()
        out["n_queued"] = counts["queued"]
        out["n_running"] = counts["running"]
        out["depth"] = counts["queued"] + counts["running"]
        return out

    def shutdown(self, wait: bool = True) -> None:
        self.queue.shutdown(wait=wait)
