"""HTTP front end for a shared :class:`~repro.execution.store.ResultStore`.

The distributed knowledge loop needs writers on *other hosts*: fleet workers
coordinated by a :class:`~repro.execution.coordinator.WorkCoordinator` whose
only shared substrate is the network.  This module serves one authoritative
``ResultStore`` (over its JSONL or sqlite backend) on the same stdlib HTTP
stack as the recommendation service — per-route :class:`ServiceMetrics`,
semaphore admission control with ``429 + Retry-After``, threaded connections
— and :class:`~repro.execution.store_backends.HttpStoreBackend` is its
client: any ``ResultStore("http://host:port")`` on any machine reads and
writes this one.

========  ====================  ===================================================
Method    Path                  Meaning
========  ====================  ===================================================
GET       ``/healthz``          liveness + store stats + backend identity
GET       ``/metrics``          per-route counters and latency quantiles
GET       ``/store/contexts``   every context in the store
POST      ``/store/image``      ``{"context"}`` → full score/config image
POST      ``/store/put``        ``{"context","key","score","config"?}`` — one record
POST      ``/store/compact``    ``{"context"?}`` → lines reclaimed
========  ====================  ===================================================

Scores travel as ``repr`` strings in both directions (strict JSON has no
NaN/Infinity literals; ``float(repr(x))`` round-trips every IEEE double).
Writers serialise in the server's store lock, so N remote processes get the
same zero-lost-write guarantee as N local threads.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .. import obs
from ..execution.store import ResultStore
from .http import ServiceError
from .metrics import ServiceMetrics

__all__ = [
    "StoreService",
    "StoreServer",
    "make_store_server",
    "serve_store_in_thread",
    "store_route_label",
]


def store_route_label(path: str) -> str:
    """Collapse a request path into a bounded metrics label."""
    path = path.partition("?")[0]
    known = {"/healthz", "/metrics", "/store/contexts", "/store/image",
             "/store/put", "/store/compact"}
    return path if path in known else "(unknown)"


class StoreService:
    """The store, its metrics and its admission gate behind one server.

    ``max_inflight`` bounds concurrently-admitted requests; excess callers
    get ``429`` with a ``Retry-After`` hint instead of queueing unboundedly
    on the store lock — same overload contract as the recommendation
    service.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        max_inflight: int | None = None,
        worker_id: int | str | None = None,
    ) -> None:
        self.store = store
        self.metrics = ServiceMetrics(worker_id=worker_id)
        self._gate = (
            threading.BoundedSemaphore(int(max_inflight))
            if max_inflight is not None and int(max_inflight) > 0
            else None
        )
        self.started_at = time.time()

    def close(self) -> None:
        self.store.close()

    # -- admission ---------------------------------------------------------------------
    def admit(self):
        """Context manager admitting one request (raises 429 when saturated)."""
        return _Admission(self._gate)

    # -- endpoint payloads ---------------------------------------------------------------
    def healthz_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "store": self.store.describe(),
            "stats": self.store.stats.as_dict(),
        }

    def metrics_payload(self) -> dict:
        return {
            "http": self.metrics.snapshot(),
            "store": self.store.stats.as_dict(),
        }

    def contexts_payload(self) -> dict:
        return {"contexts": self.store.contexts()}

    @staticmethod
    def _context_of(body: Any) -> str:
        if not isinstance(body, dict) or not isinstance(body.get("context"), str):
            raise ServiceError(400, "request needs a string 'context'")
        return body["context"]

    def image_payload(self, body: Any) -> dict:
        context = self._context_of(body)
        # Refresh first: the authoritative store may share its backend with
        # local writers (a sqlite fleet member on the serving host).
        self.store.refresh(context)
        scores, configs, live_lines = self.store.image(context)
        return {
            "context": context,
            "scores": {key: repr(score) for key, score in scores.items()},
            "configs": configs,
            "live_lines": live_lines,
        }

    def put_payload(self, body: Any) -> dict:
        context = self._context_of(body)
        key = body.get("key")
        if not isinstance(key, str) or not key:
            raise ServiceError(400, "put needs a non-empty string 'key'")
        try:
            score = float(body.get("score"))
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"invalid score {body.get('score')!r}") from exc
        config = body.get("config")
        if config is not None and not isinstance(config, dict):
            raise ServiceError(400, "'config' must be an object or null")
        appended = self.store.put_key(context, key, score, config)
        return {"context": context, "key": key, "appended": appended}

    def compact_payload(self, body: Any) -> dict:
        context = None
        if isinstance(body, dict) and body.get("context") is not None:
            context = self._context_of(body)
        reclaimed = self.store.compact(context)
        return {"context": context, "reclaimed": reclaimed}


class _Admission:
    """Non-blocking semaphore acquisition as a context manager."""

    def __init__(self, gate: threading.BoundedSemaphore | None) -> None:
        self._gate = gate
        self._held = False

    def __enter__(self) -> "_Admission":
        if self._gate is not None:
            self._held = self._gate.acquire(blocking=False)
            if not self._held:
                raise ServiceError(
                    429, "store server saturated; retry shortly", retry_after=0.05
                )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._held:
            self._gate.release()
            self._held = False


# The HTTP plumbing mirrors service.http deliberately (same handler shape,
# same JSON error contract) but stays a separate, tiny handler: the store
# routes carry no registry/dispatcher state and must not grow any.
class StoreServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its :class:`StoreService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: StoreService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, handler)


class _StoreHandler(BaseHTTPRequestHandler):
    server: StoreServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
        self.end_headers()
        self.wfile.write(body)
        elapsed = time.monotonic() - getattr(self, "_started", time.monotonic())
        self.server.service.metrics.observe(
            self.command, store_route_label(self.path), status, elapsed
        )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc

    def _dispatch(self, fn) -> None:
        service = self.server.service
        with obs.attach_header(self.headers.get(obs.TRACE_HEADER)):
            with obs.span(
                "store.request",
                attrs={
                    "route": store_route_label(self.path),
                    "method": self.command,
                },
            ):
                try:
                    with service.admit():
                        payload = fn()
                except ServiceError as exc:
                    self._send_json(
                        exc.status, {"error": str(exc)}, retry_after=exc.retry_after
                    )
                except Exception as exc:  # noqa: BLE001 — one request never kills the server
                    obs.error_event("store_server.dispatch", exc)
                    self._send_json(500, {"error": f"internal error: {exc}"})
                else:
                    self._send_json(200, payload)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._started = time.monotonic()
        service = self.server.service
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._dispatch(service.healthz_payload)
        elif path == "/metrics":
            self._dispatch(service.metrics_payload)
        elif path == "/store/contexts":
            self._dispatch(service.contexts_payload)
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._started = time.monotonic()
        service = self.server.service
        path = self.path.partition("?")[0]
        routes = {
            "/store/image": service.image_payload,
            "/store/put": service.put_payload,
            "/store/compact": service.compact_payload,
        }
        handler = routes.get(path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        self._dispatch(lambda: handler(self._read_body()))


def make_store_server(
    service: StoreService | ResultStore,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> StoreServer:
    """Bind the store front end (``port=0`` picks an ephemeral port)."""
    if isinstance(service, ResultStore):
        service = StoreService(service)
    return StoreServer((host, port), _StoreHandler, service, quiet=quiet)


def serve_store_in_thread(
    service: StoreService | ResultStore, host: str = "127.0.0.1", port: int = 0
) -> tuple[StoreServer, threading.Thread]:
    """Convenience for tests/examples: serve on a daemon thread, return both."""
    server = make_store_server(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
