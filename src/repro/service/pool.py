"""Pre-forked multi-process worker pool — the scale-out tier of serving.

A single :class:`~repro.service.http.ServiceServer` is a
``ThreadingHTTPServer``: plenty of concurrency for I/O, but every request
body is parsed and every model scored under one CPython GIL.
:class:`ServicePool` breaks that ceiling the classic Unix way — fork N
worker processes that all accept on the same address, each running the
full service stack (registry snapshot, dispatcher with admission control,
fit-job queue, metrics recorder) over the same registry directory.

Socket sharing comes in two flavours, picked automatically:

* ``SO_REUSEPORT`` (Linux/BSD): the parent binds the address *without
  listening* — reserving the port and resolving ``port=0`` — and every
  worker binds its own ``SO_REUSEPORT`` socket and listens.  The kernel
  hashes incoming connections across the listening sockets, so accepts
  never contend on a shared lock and a worker's backlog is its own.
* fork-after-bind fallback: the parent binds *and listens*, and each
  forked worker accepts on the inherited file descriptor (``fork`` shares
  descriptors regardless of the close-on-exec flag because there is no
  ``exec``).  The kernel wakes one worker per connection.

Cross-process coordination is deliberately file-based, mirroring the
registry's own design:

* **promote/rollback** — any worker that mutates the registry bumps the
  ``GENERATION`` token file; sibling workers notice on their next lookup
  and drop their caches, so a hot-swap through one worker is visible on
  all of them without IPC (see :mod:`repro.service.registry`).
* **metrics** — each worker periodically flushes its
  :class:`~repro.service.metrics.ServiceMetrics` payload into a shared
  :class:`~repro.service.metrics.MetricsDirectory`; whichever worker
  answers ``GET /metrics`` merges every sibling's flushed payload into
  the pool-wide aggregate.

The parent never serves requests.  It supervises: a background thread
reaps exited workers (``waitpid(WNOHANG)``) and respawns them with
exponential backoff, so a crashed worker costs a blip of capacity, not an
outage.  Worker payload files survive a crash, so requests a dead worker
served stay in the aggregate.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

from .. import obs
from .http import RecommendationService, make_http_server
from .metrics import MetricsDirectory

__all__ = ["ServicePool", "reuse_port_supported"]

_READY_BYTE = b"R"


def reuse_port_supported() -> bool:
    """Whether this platform accepts ``SO_REUSEPORT`` on a TCP socket."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


class _WorkerSlot:
    """Bookkeeping for one worker position in the pool."""

    __slots__ = ("index", "pid", "restarts", "backoff", "next_spawn_at")

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: int | None = None
        self.restarts = 0
        self.backoff = 0.0
        self.next_spawn_at = 0.0


class ServicePool:
    """Pre-forked pool of :class:`RecommendationService` HTTP workers.

    Parameters mirror :class:`RecommendationService` where they overlap;
    the rest shape the pool itself.

    Parameters
    ----------
    registry_path:
        The registry directory every worker serves (each worker opens its
        own :class:`~repro.service.registry.ModelRegistry` over it).
    n_workers:
        Worker processes to keep alive.
    metrics_dir:
        Shared directory for per-worker metrics payloads.  Defaults to a
        temporary directory owned (and removed) by the pool.
    respawn_backoff / max_respawn_backoff:
        Initial and maximum delay before respawning a crashed worker; the
        delay doubles on repeated crashes and resets after a stable run.
    flush_interval:
        Seconds between a worker's background metrics flushes.
    """

    def __init__(
        self,
        registry_path: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 2,
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        fit_workers: int = 1,
        max_queue_depth: int | None = None,
        max_queue_delay_ms: float | None = None,
        metrics_dir: str | Path | None = None,
        respawn_backoff: float = 0.1,
        max_respawn_backoff: float = 5.0,
        flush_interval: float = 0.25,
        quiet: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX guard
            raise RuntimeError("ServicePool requires os.fork (POSIX only)")
        self.registry_path = Path(registry_path)
        self.host = host
        self.n_workers = int(n_workers)
        self.service_options = {
            "batching": batching,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "fit_workers": fit_workers,
            "max_queue_depth": max_queue_depth,
            "max_queue_delay_ms": max_queue_delay_ms,
        }
        self.respawn_backoff = float(respawn_backoff)
        self.max_respawn_backoff = float(max_respawn_backoff)
        self.flush_interval = float(flush_interval)
        self.quiet = quiet
        self._requested_port = int(port)
        self._owns_metrics_dir = metrics_dir is None
        self._metrics_path = (
            Path(metrics_dir)
            if metrics_dir is not None
            else Path(tempfile.mkdtemp(prefix="repro-metrics-"))
        )
        self.reuse_port = reuse_port_supported()
        self._parent_socket: socket.socket | None = None
        self._slots = [_WorkerSlot(i) for i in range(self.n_workers)]
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._started = False
        self.port = 0

    # -- lifecycle ---------------------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> "ServicePool":
        """Bind, fork all workers, and wait until each accepts connections."""
        if self._started:
            raise RuntimeError("pool already started")
        self._parent_socket = self._bind_parent_socket()
        self.port = self._parent_socket.getsockname()[1]
        self._started = True
        deadline = time.monotonic() + ready_timeout
        for slot in self._slots:
            self._spawn(slot, ready_deadline=deadline)
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _bind_parent_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port:
            # Reserve the port (and resolve port=0) WITHOUT listening: a
            # bound-but-not-listening socket receives no connections, so
            # the kernel distributes only across the workers' own
            # listening SO_REUSEPORT sockets.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self._requested_port))
        else:
            # Fallback: one listening socket, inherited by every worker.
            sock.bind((self.host, self._requested_port))
            sock.listen(128)
        return sock

    def _spawn(self, slot: _WorkerSlot, ready_deadline: float | None = None) -> None:
        """Fork one worker and wait for its readiness byte."""
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            try:
                self._worker_main(slot.index, write_fd)
            except BaseException:  # noqa: BLE001 — a worker must never re-enter parent code
                os._exit(1)
            os._exit(0)
        os.close(write_fd)
        slot.pid = pid
        timeout = None
        if ready_deadline is not None:
            timeout = max(0.0, ready_deadline - time.monotonic())
        try:
            readable, _, _ = select.select([read_fd], [], [], timeout)
            if not readable or os.read(read_fd, 1) != _READY_BYTE:
                raise RuntimeError(
                    f"worker {slot.index} (pid {pid}) failed to become ready"
                )
        finally:
            os.close(read_fd)

    def _worker_main(self, index: int, ready_fd: int) -> None:
        """Runs in the forked child: serve until SIGTERM, then exit."""
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent handles Ctrl-C
        listen_socket = self._worker_socket()
        worker_id = f"w{index}-{os.getpid()}"
        service = RecommendationService(
            self.registry_path,
            worker_id=worker_id,
            metrics_dir=self._metrics_path,
            **self.service_options,
        )
        server = make_http_server(
            service, quiet=self.quiet, listen_socket=listen_socket
        )
        flusher = threading.Thread(
            target=self._flush_loop, args=(service,), daemon=True
        )
        flusher.start()
        os.write(ready_fd, _READY_BYTE)
        os.close(ready_fd)
        try:
            server.serve_forever(poll_interval=0.1)
        except SystemExit:
            pass
        finally:
            try:
                service.close()  # final metrics flush included
            except Exception as exc:  # noqa: BLE001 — shutting down anyway
                obs.error_event("pool.worker_close", exc)

    def _worker_socket(self) -> socket.socket:
        """The socket a worker accepts on (per-mode, see module docstring)."""
        assert self._parent_socket is not None
        if not self.reuse_port:
            return self._parent_socket  # inherited, already listening
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        return sock

    def _flush_loop(self, service: RecommendationService) -> None:
        while True:
            time.sleep(self.flush_interval)
            try:
                service.flush_metrics()
            except Exception as exc:  # noqa: BLE001 — metrics must never kill a worker
                obs.error_event("pool.flush", exc)

    # -- supervision -------------------------------------------------------------------
    def _supervise(self) -> None:
        """Reap exited workers and respawn them with exponential backoff."""
        while not self._stopping.wait(0.1):
            now = time.monotonic()
            for slot in self._slots:
                if slot.pid is not None and self._reap(slot):
                    slot.restarts += 1
                    slot.backoff = min(
                        self.max_respawn_backoff,
                        self.respawn_backoff * (2 ** min(slot.restarts - 1, 8)),
                    )
                    slot.next_spawn_at = now + slot.backoff
                if slot.pid is None and now >= slot.next_spawn_at:
                    try:
                        self._spawn(slot, ready_deadline=time.monotonic() + 30.0)
                    except Exception as exc:  # noqa: BLE001 — retry on the next tick
                        obs.error_event("pool.spawn", exc)
                        slot.next_spawn_at = time.monotonic() + max(
                            slot.backoff, self.respawn_backoff
                        )
                    else:
                        # A worker that stays up resets the penalty for its slot.
                        slot.next_spawn_at = 0.0

    def _reap(self, slot: _WorkerSlot) -> bool:
        """True if the slot's worker has exited (pid cleared)."""
        try:
            pid, _status = os.waitpid(slot.pid, os.WNOHANG)
        except ChildProcessError:
            slot.pid = None
            return True
        if pid == slot.pid:
            slot.pid = None
            return True
        return False

    # -- shutdown ----------------------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every worker, escalate to SIGKILL, release the socket."""
        if not self._started:
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        for sig in (signal.SIGTERM, signal.SIGKILL):
            deadline = time.monotonic() + (timeout if sig == signal.SIGTERM else 2.0)
            for slot in self._slots:
                if slot.pid is not None:
                    try:
                        os.kill(slot.pid, sig)
                    except ProcessLookupError:
                        slot.pid = None
            while any(s.pid is not None for s in self._slots):
                for slot in self._slots:
                    if slot.pid is not None:
                        self._reap(slot)
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.02)
            if not any(s.pid is not None for s in self._slots):
                break
        if self._parent_socket is not None:
            try:
                self._parent_socket.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._parent_socket = None
        if self._owns_metrics_dir:
            self._remove_metrics_dir()
        self._started = False

    def _remove_metrics_dir(self) -> None:
        try:
            for entry in self._metrics_path.glob("*"):
                entry.unlink(missing_ok=True)
            self._metrics_path.rmdir()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    # -- observability -----------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def worker_pids(self) -> list[int]:
        """Live worker pids (order = slot order; crashed slots omitted)."""
        return [slot.pid for slot in self._slots if slot.pid is not None]

    @property
    def metrics_path(self) -> Path:
        return self._metrics_path

    def aggregate_metrics(self) -> list[dict]:
        """The raw flushed per-worker payloads (parent-side convenience)."""
        return MetricsDirectory(self._metrics_path).read_all()

    def __enter__(self) -> "ServicePool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "reuseport" if self.reuse_port else "fork-after-bind"
        return (
            f"ServicePool(url={self.url!r}, workers={len(self.worker_pids)}/"
            f"{self.n_workers}, mode={mode})"
        )
