"""Versioned model registry — the artifact tier of the serving subsystem.

A :class:`ModelRegistry` owns a directory of named models, each with an
append-only sequence of immutable versions (every version is a full
:meth:`~repro.core.automodel.AutoModel.save` cache directory: decision model,
performance table, corpus, result store) plus an atomically swapped pointer
to the *current* version:

.. code-block:: text

    <root>/
      <model-name>/
        CURRENT.json            # {"version": ..., "previous": ...} — os.replace'd
        versions/
          v0001/
            decision_model.json # + manifest metadata (registry provenance)
            performance_table.json, corpus.json, results/ ...
          v0002/ ...

Design points
-------------
* **Atomic promote/rollback.**  ``CURRENT.json`` is rewritten via a temp file
  and ``os.replace``, so a reader never observes a torn pointer: every
  :meth:`resolve` returns a consistent ``(name, version, model)`` snapshot —
  old or new, never a mix.  ``rollback`` flips back to the pointer's recorded
  ``previous`` version.
* **LRU of deserialized models.**  Restoring an ``AutoModel`` parses MLP
  weights out of JSON; the registry keeps the ``max_cached_models`` most
  recently served ``(name, version)`` instances hot so steady-state request
  handling never touches disk.
* **Discovery.**  Any cache directory produced by
  ``AutoModel.fit_from_datasets(cache_dir=...)`` / ``save`` can be imported
  as a new version (:meth:`import_cache_dir`), and the registry lists models
  cheaply through the persistence manifests (no weight deserialisation).
* **Generation-keyed caching.**  Listing used to re-walk the registry
  directory and re-read ``CURRENT.json`` on every call — both sit on
  latency-critical serving paths.  Every mutation (publish / promote /
  rollback) now atomically rewrites a ``GENERATION`` token file at the
  registry root; readers cache the directory walk and the pointer contents
  and invalidate only when the token changes.  Because the token lives on
  the shared filesystem, the invalidation crosses *processes*: a promote
  handled by one pre-forked worker is picked up by every sibling worker on
  its next (one small file read) generation check.  Out-of-band edits that
  bypass :class:`ModelRegistry` should touch the token file — or callers can
  force a rescan with :meth:`refresh`.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.automodel import AutoModel
from ..core.persistence import read_decision_model_manifest

__all__ = ["ServableModel", "ModelRegistry", "default_registry_root"]

_MODEL_FILE = "decision_model.json"
_POINTER_FILE = "CURRENT.json"
_VERSIONS_DIR = "versions"
_GENERATION_FILE = "GENERATION"

REGISTRY_ENV_VAR = "REPRO_REGISTRY_DIR"


def default_registry_root() -> Path:
    """The registry directory the service CLI uses when none is given.

    Overridable with the ``REPRO_REGISTRY_DIR`` environment variable.
    """
    override = os.environ.get(REGISTRY_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".repro" / "registry"


@dataclass(frozen=True)
class ServableModel:
    """A consistent snapshot handed to the dispatcher: one name@version pair."""

    name: str
    version: str
    model: AutoModel

    @property
    def task(self) -> str:
        return self.model.task.value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "task": self.task,
            "labels": list(self.model.decision_model.labels),
        }


class ModelRegistry:
    """Discovers, versions and hot-swaps saved decision models."""

    def __init__(self, root: str | Path, max_cached_models: int = 8) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_cached_models = int(max_cached_models)
        self._lock = threading.RLock()
        self._cache: OrderedDict[tuple[str, str], AutoModel] = OrderedDict()
        self.model_loads = 0
        self.model_cache_hits = 0
        self.listing_scans = 0  # actual directory walks (cache misses)
        self._gen_counter = itertools.count(1)
        # Generation-keyed listing/pointer caches (all guarded by _lock).
        self._cached_generation: str | None = None
        self._names_cache: list[str] | None = None
        self._versions_cache: dict[str, list[str]] = {}
        self._pointer_cache: dict[str, dict] = {}
        if not self._generation_path().exists():
            self._bump_generation()

    # -- the generation token ------------------------------------------------------------
    def _generation_path(self) -> Path:
        return self.root / _GENERATION_FILE

    def generation(self) -> str:
        """The registry's mutation token (changes on publish/promote/rollback)."""
        try:
            return self._generation_path().read_text(encoding="utf-8")
        except OSError:
            return ""

    def _bump_generation(self) -> None:
        """Atomically advance the token and drop this instance's caches."""
        token = f"{time.time_ns()}:{os.getpid()}:{next(self._gen_counter)}"
        path = self._generation_path()
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            tmp.write_text(token, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - read-only filesystem degrades to rescans
            pass
        with self._lock:
            self._cached_generation = None

    def refresh(self) -> None:
        """Force the next listing/pointer read to rescan the filesystem."""
        with self._lock:
            self._cached_generation = None

    def _sync_caches(self) -> None:
        """Drop stale caches if another process bumped the generation (lock held)."""
        generation = self.generation()
        if generation != self._cached_generation:
            self._names_cache = None
            self._versions_cache.clear()
            self._pointer_cache.clear()
            self._cached_generation = generation

    # -- layout ------------------------------------------------------------------------
    @staticmethod
    def validate_name(name: str) -> str:
        # "." and ".." pass a pure character check but would escape the
        # registry root when joined into paths (reachable over HTTP).
        if (
            not name
            or set(name) == {"."}
            or not all(ch.isalnum() or ch in "-_." for ch in name)
        ):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '-', '_', '.'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self.validate_name(name)

    def _version_dir(self, name: str, version: str) -> Path:
        return self._model_dir(name) / _VERSIONS_DIR / version

    def _pointer_path(self, name: str) -> Path:
        return self._model_dir(name) / _POINTER_FILE

    # -- listing -----------------------------------------------------------------------
    def names(self) -> list[str]:
        """Every model with at least one published version.

        Stray directories that are not valid model names (dropped there by
        hand or by other tooling) are skipped, never an error.  The walk is
        cached against the registry generation, so steady-state calls cost
        one small token-file read instead of a directory scan.
        """
        with self._lock:
            self._sync_caches()
            if self._names_cache is None:
                found = []
                for entry in sorted(self.root.iterdir()) if self.root.exists() else []:
                    try:
                        if entry.is_dir() and self.versions(entry.name):
                            found.append(entry.name)
                    except ValueError:
                        continue
                self._names_cache = found
            return list(self._names_cache)

    def versions(self, name: str) -> list[str]:
        """Published versions of ``name``, oldest first (generation-cached)."""
        self.validate_name(name)
        with self._lock:
            self._sync_caches()
            cached = self._versions_cache.get(name)
            if cached is None:
                self.listing_scans += 1
                cached = self._scan_versions(name)
                self._versions_cache[name] = cached
            return list(cached)

    def _scan_versions(self, name: str) -> list[str]:
        """The uncached directory walk behind :meth:`versions`."""
        versions_dir = self._model_dir(name) / _VERSIONS_DIR
        if not versions_dir.exists():
            return []
        return sorted(
            entry.name
            for entry in versions_dir.iterdir()
            if entry.is_dir() and (entry / _MODEL_FILE).exists()
        )

    def manifest(self, name: str, version: str) -> dict:
        """Cheap manifest of one version (no weight deserialisation)."""
        model_path = self._version_dir(name, version) / _MODEL_FILE
        if not model_path.exists():
            raise KeyError(f"model {name!r} has no version {version!r}")
        manifest = read_decision_model_manifest(model_path)
        manifest["name"] = name
        manifest["version"] = version
        return manifest

    def describe(self) -> list[dict]:
        """Registry listing for the ``/models`` endpoint."""
        out = []
        for name in self.names():
            current = self.current_version(name)
            entry = {
                "name": name,
                "current_version": current,
                "versions": self.versions(name),
            }
            if current is not None:
                manifest = self.manifest(name, current)
                entry["task"] = manifest["task"]
                entry["labels"] = manifest["labels"]
                entry["key_features"] = manifest["key_features"]
                entry["metadata"] = manifest["metadata"]
            out.append(entry)
        return out

    # -- publishing --------------------------------------------------------------------
    def _next_version(self, name: str) -> str:
        existing = self.versions(name)
        numbers = [
            int(version[1:])
            for version in existing
            if version.startswith("v") and version[1:].isdigit()
        ]
        return f"v{(max(numbers) + 1 if numbers else 1):04d}"

    def publish(
        self,
        model: AutoModel,
        name: str,
        activate: bool | None = None,
        metadata: dict | None = None,
    ) -> str:
        """Persist ``model`` as a new version of ``name``; returns the version.

        ``activate=None`` (the default) promotes the new version only when the
        model has no current version yet — publishing into live traffic is an
        explicit decision (``activate=True``), never an accident.
        """
        with self._lock:
            # Rescan before numbering: another process may have published
            # since our generation-cached listing was filled.
            self.refresh()
            version = self._next_version(name)
            version_dir = self._version_dir(name, version)
            version_dir.mkdir(parents=True, exist_ok=True)
            manifest_metadata = {
                "registry_name": name,
                "version": version,
                "published_at": time.time(),
            }
            if metadata:
                manifest_metadata.update(metadata)
            model.save(version_dir, metadata=manifest_metadata)
            # AutoModel.save covers model/table/corpus but not the result
            # store (a directory of shards); carry it over so previously
            # tuned configurations stay servable from the new version.
            source_store = getattr(model.store, "root", None)
            target_store = version_dir / "results"
            if (
                source_store is not None
                and Path(source_store).is_dir()
                and Path(source_store).resolve() != target_store.resolve()
            ):
                shutil.copytree(source_store, target_store, dirs_exist_ok=True)
            self._bump_generation()  # the new version must be visible to listings
            if activate or (activate is None and self.current_version(name) is None):
                self.promote(name, version)
            return version

    def import_cache_dir(
        self, cache_dir: str | Path, name: str, activate: bool | None = None
    ) -> str:
        """Discover an existing ``AutoModel`` cache directory as a new version."""
        model = AutoModel.load(cache_dir)
        return self.publish(
            model, name, activate=activate, metadata={"source": str(cache_dir)}
        )

    # -- the pointer -------------------------------------------------------------------
    def _read_pointer(self, name: str) -> dict:
        try:
            payload = json.loads(self._pointer_path(name).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def _write_pointer(self, name: str, pointer: dict) -> None:
        path = self._pointer_path(name)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(pointer), encoding="utf-8")
        os.replace(tmp, path)

    def current_version(self, name: str) -> str | None:
        """The promoted version of ``name`` (``None`` when nothing is live).

        The pointer read is generation-cached: on the per-request serving
        path this costs a dict lookup, and a promote — from this process or
        any sibling worker process — invalidates it via the token file.
        """
        with self._lock:
            self._sync_caches()
            pointer = self._pointer_cache.get(name)
            if pointer is None:
                pointer = dict(self._read_pointer(name))
                version = pointer.get("version")
                if not (
                    isinstance(version, str)
                    and (self._version_dir(name, version) / _MODEL_FILE).exists()
                ):
                    pointer["version"] = None
                self._pointer_cache[name] = pointer
            return pointer.get("version")

    def promote(self, name: str, version: str) -> None:
        """Atomically make ``version`` the served version of ``name``."""
        with self._lock:
            if not (self._version_dir(name, version) / _MODEL_FILE).exists():
                raise KeyError(f"model {name!r} has no version {version!r}")
            previous = self.current_version(name)
            self._write_pointer(
                name,
                {"version": version, "previous": previous, "promoted_at": time.time()},
            )
            self._bump_generation()

    def rollback(self, name: str) -> str:
        """Re-promote the version recorded as ``previous``; returns it."""
        self.validate_name(name)  # before _read_pointer swallows the ValueError
        with self._lock:
            pointer = self._read_pointer(name)
            previous = pointer.get("previous")
            if not isinstance(previous, str) or not (
                self._version_dir(name, previous) / _MODEL_FILE
            ).exists():
                raise KeyError(f"model {name!r} has no version to roll back to")
            self.promote(name, previous)
            return previous

    # -- serving -----------------------------------------------------------------------
    def _load(self, name: str, version: str) -> AutoModel:
        key = (name, version)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.model_cache_hits += 1
                return cached
            version_dir = self._version_dir(name, version)
            if not (version_dir / _MODEL_FILE).exists():
                raise KeyError(f"model {name!r} has no version {version!r}")
        # Deserialisation (JSON + MLP weights) happens OUTSIDE the lock so a
        # cold load never stalls other models' resolves or promote/publish.
        # Two threads may race the same load; the first insert wins.
        model = AutoModel.load(version_dir)
        with self._lock:
            existing = self._cache.get(key)
            if existing is not None:
                self._cache.move_to_end(key)
                self.model_cache_hits += 1
                return existing
            self._cache[key] = model
            self.model_loads += 1
            while len(self._cache) > self.max_cached_models:
                self._cache.popitem(last=False)
            return model

    def resolve(self, name: str | None = None, version: str | None = None) -> ServableModel:
        """A consistent ``(name, version, model)`` snapshot for serving.

        ``name=None`` resolves the registry's only model (an error when the
        registry serves several — the request must say which); note this
        convenience walks the registry directory per call, so latency-critical
        clients should name the model.  ``version`` pins a specific version;
        otherwise the current pointer is read once, so concurrent promotes can
        never produce a mixed snapshot.
        """
        if name is None:
            names = self.names()
            if len(names) != 1:
                raise KeyError(
                    f"registry serves {len(names)} models ({names}); "
                    "the request must name one"
                )
            name = names[0]
        if version is None:
            version = self.current_version(name)
            if version is None:
                raise KeyError(f"model {name!r} has no promoted version")
        return ServableModel(name=name, version=version, model=self._load(name, version))

    # -- export ------------------------------------------------------------------------
    def export(self, name: str, version: str | None = None) -> dict:
        """Compile one version's decision model to dependency-free artifacts.

        Writes an ``export/`` directory next to the version's saved caches:
        ``decision_model.export.json`` (the JSON weights document) and
        ``exported_model.py`` (a standalone pure-python module — no repro, no
        numpy).  The artifact predicts the argmax algorithm label for
        meta-feature rows, byte-identical to the live decision model.
        Returns a summary dict (paths, labels) for callers and the HTTP/CLI
        surfaces; re-exporting overwrites the previous artifacts.
        """
        from ..export import export_decision_model, save_artifact, write_source

        servable = self.resolve(name, version)
        document = export_decision_model(servable.model.decision_model)
        document["model"] = {
            "name": servable.name,
            "version": servable.version,
            "task": servable.task,
        }
        export_dir = self._version_dir(servable.name, servable.version) / "export"
        artifact = save_artifact(document, export_dir / "decision_model.export.json")
        module = write_source(
            document, export_dir / "exported_model.py", name=servable.name
        )
        return {
            "name": servable.name,
            "version": servable.version,
            "task": servable.task,
            "labels": list(servable.model.decision_model.labels),
            "artifact": str(artifact),
            "module": str(module),
        }

    def stats(self) -> dict:
        n_models = len(self.names())  # generation-cached listing
        with self._lock:
            return {
                "models": n_models,
                "cached_models": len(self._cache),
                "model_loads": self.model_loads,
                "model_cache_hits": self.model_cache_hits,
                "listing_scans": self.listing_scans,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry(root={str(self.root)!r}, models={self.names()})"
