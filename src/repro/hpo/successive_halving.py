"""Successive halving and Hyperband.

The paper's related-work section cites Hyperband (Li et al., ICLR 2017) among
the modern HPO techniques; this module implements it (and its building block,
successive halving) on top of the same :class:`~repro.hpo.space.ConfigSpace` /
:class:`~repro.hpo.base.HPOProblem` abstractions, so it can be swapped into
Auto-Model's UDR in place of GA/BO.

Because :class:`HPOProblem` objectives take only a configuration, fidelity is
passed through a reserved ``"__budget__"`` key when the objective declares
support for it (``fidelity_key`` below); otherwise the optimizer degrades
gracefully into plain successive halving on full-fidelity evaluations, which
is still a useful racing strategy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["SuccessiveHalving", "Hyperband"]


class SuccessiveHalving(BaseOptimizer):
    """Race ``n_configurations`` configurations, keeping the top 1/eta each rung.

    Parameters
    ----------
    n_configurations:
        Number of configurations sampled for the first rung.
    eta:
        Elimination factor (keep ``1/eta`` of the survivors per rung).
    min_fidelity / max_fidelity:
        Range of the fidelity parameter passed to the objective via
        ``fidelity_key``; the first rung runs at ``min_fidelity`` and the last
        at ``max_fidelity``.
    fidelity_key:
        Name under which the fidelity is injected into the configuration dict
        (``None`` disables fidelity injection entirely).
    """

    name = "successive-halving"

    def __init__(
        self,
        n_configurations: int = 27,
        eta: int = 3,
        min_fidelity: float = 1.0,
        max_fidelity: float = 27.0,
        fidelity_key: str | None = "__budget__",
        random_state: int | None = None,
        warm_start: int = 0,
    ) -> None:
        super().__init__(random_state=random_state, warm_start=warm_start)
        if n_configurations < 2:
            raise ValueError("n_configurations must be >= 2")
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if not 0 < min_fidelity <= max_fidelity:
            raise ValueError("require 0 < min_fidelity <= max_fidelity")
        self.n_configurations = n_configurations
        self.eta = eta
        self.min_fidelity = min_fidelity
        self.max_fidelity = max_fidelity
        self.fidelity_key = fidelity_key

    # -- internals ---------------------------------------------------------------------
    def _n_rungs(self) -> int:
        if self.max_fidelity == self.min_fidelity:
            return 1
        return int(np.floor(np.log(self.max_fidelity / self.min_fidelity) / np.log(self.eta))) + 1

    def _with_fidelity(self, config: dict[str, Any], fidelity: float) -> dict[str, Any]:
        if self.fidelity_key is None:
            return dict(config)
        enriched = dict(config)
        enriched[self.fidelity_key] = fidelity
        return enriched

    def _run_bracket(
        self,
        problem: HPOProblem,
        budget: Budget,
        trials: list[Trial],
        configs: list[dict[str, Any]],
        start_rung: int,
    ) -> None:
        """Race ``configs`` through the rungs, mutating ``trials`` in place."""
        n_rungs = self._n_rungs()
        survivors = list(configs)
        for rung in range(start_rung, n_rungs):
            if not survivors or budget.exhausted():
                return
            fidelity = min(self.max_fidelity, self.min_fidelity * self.eta**rung)
            # Each rung races its survivors as one engine batch (parallel when
            # the engine has workers); configs cut off by the budget are None.
            scores = self._evaluate_many(
                problem,
                [self._with_fidelity(config, fidelity) for config in survivors],
                budget,
                trials,
                iteration=rung,
            )
            scored = [
                (score, config)
                for score, config in zip(scores, survivors)
                if score is not None
            ]
            if not scored:
                return
            scored.sort(key=lambda pair: pair[0], reverse=True)
            keep = max(1, len(scored) // self.eta)
            survivors = [config for _, config in scored[:keep]]

    # -- public API ---------------------------------------------------------------------
    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        rng = np.random.default_rng(self.random_state)
        space = problem.space
        trials: list[Trial] = []
        configs = [space.default_configuration()]
        # Prior-run bests enter the race alongside fresh samples; the rungs
        # re-rank them under the current objective like any other contender.
        configs += self._warm_start_configs(problem)[: self.n_configurations - 1]
        configs += [
            space.sample(rng) for _ in range(self.n_configurations - len(configs))
        ]
        self._run_bracket(problem, budget, trials, configs, start_rung=0)
        if not trials:
            self._evaluate(problem, space.default_configuration(), budget, trials, 0)
        result = self._finalize(trials, budget, problem, self.name)
        if self.fidelity_key is not None:
            result.best_config = {
                k: v for k, v in result.best_config.items() if k != self.fidelity_key
            }
        return result


class Hyperband(SuccessiveHalving):
    """Hyperband: several successive-halving brackets with different aggressiveness."""

    name = "hyperband"

    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        rng = np.random.default_rng(self.random_state)
        space = problem.space
        trials: list[Trial] = []
        s_max = self._n_rungs() - 1
        for s in range(s_max, -1, -1):
            if budget.exhausted():
                break
            # Bracket s samples ~(s_max+1)/(s+1) * eta**s configs and starts them
            # at fidelity max_fidelity * eta**(-s) (rung s_max - s).
            n = max(2, int(np.ceil((s_max + 1) / (s + 1) * self.eta**s)))
            configs = [space.sample(rng) for _ in range(n)]
            if s == s_max:
                configs[0] = space.default_configuration()
                # Prior-run bests race in the widest (first) bracket only, so
                # the remaining brackets keep their exploratory character.
                seeds = self._warm_start_configs(problem)[: max(0, n - 1)]
                configs[1 : 1 + len(seeds)] = seeds
            self._run_bracket(problem, budget, trials, configs, start_rung=s_max - s)
        if not trials:
            self._evaluate(problem, space.default_configuration(), budget, trials, 0)
        result = self._finalize(trials, budget, problem, self.name)
        if self.fidelity_key is not None:
            result.best_config = {
                k: v for k, v in result.best_config.items() if k != self.fidelity_key
            }
        return result
