"""Hyperparameter configuration spaces.

A :class:`ConfigSpace` is an ordered collection of named hyperparameters
(:class:`IntParam`, :class:`FloatParam`, :class:`CategoricalParam`,
:class:`BoolParam`), optionally with activation conditions (a parameter is
only active when a parent parameter holds one of the given values — e.g.
``momentum`` is only meaningful when ``solver == 'sgd'`` in Table II).

Configurations are plain ``dict``s.  The space supports uniform sampling,
grid enumeration, neighbourhood mutation (for the GA) and encoding to a unit
hypercube (for the Gaussian-process surrogate used by BO).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

__all__ = [
    "Hyperparameter",
    "IntParam",
    "FloatParam",
    "CategoricalParam",
    "BoolParam",
    "Condition",
    "AndCondition",
    "ConfigSpace",
]


@dataclass(frozen=True)
class Condition:
    """Parameter is active only when ``parent`` takes a value in ``values``."""

    parent: str
    values: tuple

    def satisfied(self, config: dict[str, Any]) -> bool:
        return config.get(self.parent) in self.values


@dataclass(frozen=True)
class AndCondition:
    """Active only when *every* sub-condition is satisfied.

    Joint CASH spaces need this: Auto-WEKA's ``joint_space`` gates each
    parameter on the root algorithm choice, but a pipeline parameter may
    also carry its own activation condition (``min_frequency`` only when
    ``group_rare``) — both must hold.
    """

    conditions: tuple

    def satisfied(self, config: dict[str, Any]) -> bool:
        return all(condition.satisfied(config) for condition in self.conditions)


def _prefix_condition(condition, prefix: str, sep: str):
    """Rewrite a condition's parent name(s) into a namespace."""
    if isinstance(condition, AndCondition):
        return AndCondition(
            tuple(_prefix_condition(c, prefix, sep) for c in condition.conditions)
        )
    return Condition(f"{prefix}{sep}{condition.parent}", condition.values)


def _strip_condition(condition, marker: str):
    """Strip a namespace from a condition; ``None`` when it reaches outside it."""
    if isinstance(condition, AndCondition):
        kept = tuple(
            stripped
            for stripped in (_strip_condition(c, marker) for c in condition.conditions)
            if stripped is not None
        )
        if not kept:
            return None
        return kept[0] if len(kept) == 1 else AndCondition(kept)
    if condition.parent.startswith(marker):
        return Condition(condition.parent[len(marker):], condition.values)
    return None


class Hyperparameter:
    """Base class for a single named hyperparameter."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("hyperparameter name must be non-empty")
        self.name = name

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> Any:
        raise NotImplementedError

    def grid(self, resolution: int) -> list[Any]:
        raise NotImplementedError

    def to_unit(self, value: Any) -> float:
        raise NotImplementedError

    def from_unit(self, u: float) -> Any:
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        raise NotImplementedError

    def default(self) -> Any:
        raise NotImplementedError


class FloatParam(Hyperparameter):
    """Continuous hyperparameter over ``[low, high]``, optionally log-scaled."""

    def __init__(self, name: str, low: float, high: float, log: bool = False) -> None:
        super().__init__(name)
        if not low < high:
            raise ValueError(f"{name}: low must be < high (got {low}, {high})")
        if log and low <= 0:
            raise ValueError(f"{name}: log-scaled range requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.log = log

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(float(rng.random()))

    def mutate(self, value: float, rng: np.random.Generator, scale: float = 0.2) -> float:
        u = self.to_unit(value) + float(rng.normal(0.0, scale))
        return self.from_unit(float(np.clip(u, 0.0, 1.0)))

    def grid(self, resolution: int) -> list[float]:
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, max(2, resolution))]

    def to_unit(self, value: float) -> float:
        # Clamp on both sides: the unit encoding must be a monotone bijection
        # between [low, high] and [0, 1] even at the floating-point edges
        # (e.g. exp(log(high)) can land one ulp above high).
        value = float(np.clip(value, self.low, self.high))
        if self.log:
            u = (np.log(value) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
        else:
            u = (value - self.low) / (self.high - self.low)
        return float(np.clip(u, 0.0, 1.0))

    def from_unit(self, u: float) -> float:
        u = float(np.clip(u, 0.0, 1.0))
        if self.log:
            value = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            value = self.low + u * (self.high - self.low)
        # Clipping is monotone, so the encoding stays order-preserving while
        # never escaping the declared domain through rounding.
        return float(np.clip(value, self.low, self.high))

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and self.low <= float(value) <= self.high

    def default(self) -> float:
        return self.from_unit(0.5)


class IntParam(Hyperparameter):
    """Integer hyperparameter over ``[low, high]`` inclusive, optionally log-scaled."""

    def __init__(self, name: str, low: int, high: int, log: bool = False) -> None:
        super().__init__(name)
        if not low < high:
            raise ValueError(f"{name}: low must be < high (got {low}, {high})")
        if log and low <= 0:
            raise ValueError(f"{name}: log-scaled range requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log = log

    def _continuous(self) -> FloatParam:
        return FloatParam(self.name, self.low, self.high + 0.4999, log=self.log)

    def sample(self, rng: np.random.Generator) -> int:
        return int(np.clip(round(self._continuous().sample(rng)), self.low, self.high))

    def mutate(self, value: int, rng: np.random.Generator, scale: float = 0.2) -> int:
        mutated = self._continuous().mutate(float(value), rng, scale)
        return int(np.clip(round(mutated), self.low, self.high))

    def grid(self, resolution: int) -> list[int]:
        count = min(max(2, resolution), self.high - self.low + 1)
        return sorted({int(round(v)) for v in np.linspace(self.low, self.high, count)})

    def to_unit(self, value: int) -> float:
        return FloatParam(self.name, self.low, self.high, log=self.log).to_unit(
            float(np.clip(value, self.low, self.high))
        )

    def from_unit(self, u: float) -> int:
        value = FloatParam(self.name, self.low, self.high, log=self.log).from_unit(u)
        return int(np.clip(round(value), self.low, self.high))

    def validate(self, value: Any) -> bool:
        return (
            isinstance(value, (int, np.integer))
            and self.low <= int(value) <= self.high
        )

    def default(self) -> int:
        return self.from_unit(0.5)


class CategoricalParam(Hyperparameter):
    """Categorical hyperparameter over an explicit list of choices."""

    def __init__(self, name: str, choices: Iterable[Any]) -> None:
        super().__init__(name)
        self.choices = list(choices)
        if len(self.choices) < 1:
            raise ValueError(f"{name}: at least one choice required")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> Any:
        if len(self.choices) == 1:
            return self.choices[0]
        others = [c for c in self.choices if c != value]
        return others[int(rng.integers(0, len(others)))]

    def grid(self, resolution: int) -> list[Any]:
        return list(self.choices)

    def to_unit(self, value: Any) -> float:
        index = self.choices.index(value)
        if len(self.choices) == 1:
            return 0.0
        return index / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        index = int(round(float(np.clip(u, 0.0, 1.0)) * (len(self.choices) - 1)))
        return self.choices[index]

    def validate(self, value: Any) -> bool:
        return value in self.choices

    def default(self) -> Any:
        return self.choices[0]


class BoolParam(CategoricalParam):
    """Boolean hyperparameter (used for feature-subset selection, Algorithm 2)."""

    def __init__(self, name: str) -> None:
        super().__init__(name, [True, False])


class ConfigSpace:
    """An ordered set of hyperparameters with optional activation conditions."""

    def __init__(self, params: Iterable[Hyperparameter] | None = None) -> None:
        self._params: dict[str, Hyperparameter] = {}
        self._conditions: dict[str, Condition] = {}
        for param in params or []:
            self.add(param)

    # -- construction -------------------------------------------------------------
    def add(self, param: Hyperparameter, condition: Condition | None = None) -> "ConfigSpace":
        if param.name in self._params:
            raise ValueError(f"duplicate hyperparameter {param.name!r}")
        self._params[param.name] = param
        if condition is not None:
            self._conditions[param.name] = condition
        return self

    def add_condition(self, name: str, condition: Condition) -> "ConfigSpace":
        if name not in self._params:
            raise KeyError(f"unknown hyperparameter {name!r}")
        self._conditions[name] = condition
        return self

    def condition(self, name: str) -> Condition | None:
        """The activation condition attached to ``name`` (``None`` if always active)."""
        return self._conditions.get(name)

    # -- namespacing / composition -------------------------------------------------
    def prefixed(self, prefix: str, sep: str = ":") -> "ConfigSpace":
        """A deep copy with every parameter (and condition parent) namespaced.

        ``prefixed("imputer")`` renames ``strategy`` to ``imputer:strategy``
        and rewrites conditions so ``imputer:strategy`` stays active only when
        ``imputer:enabled`` is — the namespace travels with the hierarchy.
        An empty prefix returns an unrenamed deep copy.
        """
        out = ConfigSpace()
        for name, param in self._params.items():
            clone = copy.deepcopy(param)
            clone.name = f"{prefix}{sep}{name}" if prefix else name
            condition = self._conditions.get(name)
            if condition is not None and prefix:
                condition = _prefix_condition(condition, prefix, sep)
            out.add(clone, condition=condition)
        return out

    @classmethod
    def join(
        cls,
        parts: Mapping[str, "ConfigSpace"] | Iterable[tuple[str, "ConfigSpace"]],
        sep: str = ":",
    ) -> "ConfigSpace":
        """Join sub-spaces under namespace prefixes into one searchable space.

        ``parts`` maps prefix → sub-space (a dict or ``(prefix, space)``
        pairs; insertion order is preserved).  Every sub-space parameter is
        renamed ``<prefix><sep><name>`` and its activation conditions are
        rewritten to the prefixed parent, so e.g. ``imputer:strategy`` is
        active only when ``imputer:enabled`` holds.  This is how a pipeline's
        preprocessing steps and its estimator contribute one joint CASH
        space (:mod:`repro.learners.pipeline`).  Name collisions across
        prefixes raise, exactly like :meth:`add`.
        """
        items = parts.items() if isinstance(parts, Mapping) else parts
        joined = cls()
        for prefix, space in items:
            sub = space.prefixed(prefix, sep=sep)
            for param in sub:
                joined.add(param, condition=sub.condition(param.name))
        return joined

    def subspace(self, prefix: str, sep: str = ":") -> "ConfigSpace":
        """The inverse of :meth:`join` for one namespace: strip ``prefix``.

        Returns a deep copy holding only the parameters named
        ``<prefix><sep>...``, with the prefix removed.  Conditions whose
        parent lives in the same namespace are kept (re-stripped); conditions
        reaching outside it cannot be represented and are dropped.
        """
        marker = f"{prefix}{sep}"
        out = ConfigSpace()
        for name, param in self._params.items():
            if not name.startswith(marker):
                continue
            clone = copy.deepcopy(param)
            clone.name = name[len(marker):]
            condition = self._conditions.get(name)
            if condition is not None:
                condition = _strip_condition(condition, marker)
            out.add(clone, condition=condition)
        return out

    @staticmethod
    def split_config(config: dict[str, Any], sep: str = ":") -> dict[str, dict[str, Any]]:
        """Group a joined configuration by namespace prefix.

        Keys without a separator land under the ``""`` group.  Only the
        first separator splits, so nested namespaces stay intact in the
        remainder: ``{"imputer:strategy": "mean"}`` →
        ``{"imputer": {"strategy": "mean"}}``.
        """
        groups: dict[str, dict[str, Any]] = {}
        for key, value in config.items():
            prefix, found, rest = key.partition(sep)
            if not found:
                prefix, rest = "", key
            groups.setdefault(prefix, {})[rest] = value
        return groups

    # -- introspection ------------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __getitem__(self, name: str) -> Hyperparameter:
        return self._params[name]

    def __iter__(self) -> Iterator[Hyperparameter]:
        return iter(self._params.values())

    def is_active(self, name: str, config: dict[str, Any]) -> bool:
        condition = self._conditions.get(name)
        return condition is None or condition.satisfied(config)

    def active_names(self, config: dict[str, Any]) -> list[str]:
        return [name for name in self._params if self.is_active(name, config)]

    # -- configuration operations ---------------------------------------------------
    def sample(self, rng: np.random.Generator | int | None = None) -> dict[str, Any]:
        """Draw a uniform random configuration (inactive params keep defaults)."""
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        config = {name: param.sample(rng) for name, param in self._params.items()}
        return self._apply_conditions(config)

    def default_configuration(self) -> dict[str, Any]:
        return self._apply_conditions(
            {name: param.default() for name, param in self._params.items()}
        )

    def _apply_conditions(self, config: dict[str, Any]) -> dict[str, Any]:
        for name in self._params:
            if not self.is_active(name, config):
                config[name] = self._params[name].default()
        return config

    def mutate(
        self,
        config: dict[str, Any],
        rng: np.random.Generator,
        mutation_rate: float = 0.25,
        scale: float = 0.2,
    ) -> dict[str, Any]:
        """Return a mutated copy of ``config`` (GA mutation operator)."""
        mutated = dict(config)
        for name, param in self._params.items():
            if rng.random() < mutation_rate:
                mutated[name] = param.mutate(mutated[name], rng, scale)
        return self._apply_conditions(mutated)

    def crossover(
        self, parent_a: dict[str, Any], parent_b: dict[str, Any], rng: np.random.Generator
    ) -> dict[str, Any]:
        """Uniform crossover of two configurations (GA crossover operator)."""
        child = {
            name: (parent_a[name] if rng.random() < 0.5 else parent_b[name])
            for name in self._params
        }
        return self._apply_conditions(child)

    def validate(self, config: dict[str, Any]) -> bool:
        """Check that every hyperparameter is present and within its domain."""
        for name, param in self._params.items():
            if name not in config or not param.validate(config[name]):
                return False
        return True

    # -- numeric encoding (for the GP surrogate) -------------------------------------
    def to_vector(self, config: dict[str, Any]) -> np.ndarray:
        return np.array(
            [param.to_unit(config[name]) for name, param in self._params.items()],
            dtype=np.float64,
        )

    def from_vector(self, vector: np.ndarray) -> dict[str, Any]:
        config = {
            name: param.from_unit(float(u))
            for (name, param), u in zip(self._params.items(), vector)
        }
        return self._apply_conditions(config)

    # -- grid enumeration -------------------------------------------------------------
    def grid(self, resolution: int = 3, max_configs: int = 10000) -> list[dict[str, Any]]:
        """Cartesian-product grid (used by :class:`~repro.hpo.grid_search.GridSearch`)."""
        axes = [param.grid(resolution) for param in self._params.values()]
        names = self.names
        configs: list[dict[str, Any]] = [{}]
        for name, axis in zip(names, axes):
            next_configs = []
            for partial in configs:
                for value in axis:
                    extended = dict(partial)
                    extended[name] = value
                    next_configs.append(extended)
                    if len(next_configs) * len(configs) > max_configs * 10:
                        break
            configs = next_configs
            if len(configs) > max_configs:
                configs = configs[:max_configs]
        return [self._apply_conditions(c) for c in configs]

    def __repr__(self) -> str:
        return f"ConfigSpace({', '.join(self.names)})"
