"""Shared machinery for HPO optimizers: problems, trials, budgets, results.

Section II-B of the paper defines an HPO problem ``P = (D, A, PN)`` whose goal
is ``argmax f(λ, A, D)``.  Here the problem is abstracted one step further:
an :class:`HPOProblem` wraps *any* objective ``f(config) -> float`` to be
maximised over a :class:`~repro.hpo.space.ConfigSpace`, because the paper
reuses the same machinery for feature selection (Algorithm 2), architecture
search (Algorithm 3) and hyperparameter tuning (Algorithm 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .space import ConfigSpace

__all__ = ["Trial", "HPOProblem", "OptimizationResult", "Budget", "BaseOptimizer"]


@dataclass
class Trial:
    """One evaluated configuration."""

    config: dict[str, Any]
    score: float
    elapsed: float = 0.0
    iteration: int = 0


@dataclass
class Budget:
    """Evaluation / wall-clock budget shared by all optimizers.

    ``max_evaluations`` limits objective calls; ``time_limit`` (seconds) limits
    wall-clock time (the paper's experiments use 30 s and 5 min limits).
    Either may be ``None`` for "unlimited".
    """

    max_evaluations: int | None = None
    time_limit: float | None = None

    def __post_init__(self) -> None:
        self._start = time.monotonic()
        self._evaluations = 0

    def start(self) -> None:
        self._start = time.monotonic()
        self._evaluations = 0

    def record_evaluation(self) -> None:
        self._evaluations += 1

    @property
    def evaluations(self) -> int:
        return self._evaluations

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def exhausted(self) -> bool:
        if self.max_evaluations is not None and self._evaluations >= self.max_evaluations:
            return True
        if self.time_limit is not None and self.elapsed >= self.time_limit:
            return True
        return False


class HPOProblem:
    """A black-box maximisation problem over a configuration space."""

    def __init__(
        self,
        space: ConfigSpace,
        objective: Callable[[dict[str, Any]], float],
        name: str = "hpo-problem",
    ) -> None:
        if len(space) == 0:
            raise ValueError("configuration space is empty")
        self.space = space
        self.objective = objective
        self.name = name

    def evaluate(self, config: dict[str, Any]) -> float:
        """Evaluate ``config``; crashes count as the worst possible score."""
        try:
            return float(self.objective(config))
        except Exception:
            return float("-inf")


@dataclass
class OptimizationResult:
    """Outcome of an optimizer run: best configuration plus the full history."""

    best_config: dict[str, Any]
    best_score: float
    trials: list[Trial] = field(default_factory=list)
    elapsed: float = 0.0
    optimizer: str = ""

    @property
    def n_evaluations(self) -> int:
        return len(self.trials)

    def history(self) -> np.ndarray:
        """Running best score after each evaluation (for convergence plots)."""
        best = -np.inf
        out = []
        for trial in self.trials:
            best = max(best, trial.score)
            out.append(best)
        return np.array(out)

    def top_k(self, k: int = 5) -> list[Trial]:
        return sorted(self.trials, key=lambda t: t.score, reverse=True)[:k]


class BaseOptimizer:
    """Interface shared by GridSearch, RandomSearch, GeneticAlgorithm and BO."""

    name = "base"

    def __init__(self, random_state: int | None = None) -> None:
        self.random_state = random_state

    def optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        raise NotImplementedError

    # -- helpers shared by subclasses ------------------------------------------------
    def _evaluate(
        self,
        problem: HPOProblem,
        config: dict[str, Any],
        budget: Budget,
        trials: list[Trial],
        iteration: int,
    ) -> float:
        start = time.monotonic()
        score = problem.evaluate(config)
        budget.record_evaluation()
        trials.append(
            Trial(
                config=dict(config),
                score=score,
                elapsed=time.monotonic() - start,
                iteration=iteration,
            )
        )
        return score

    @staticmethod
    def _finalize(
        trials: list[Trial], budget: Budget, space: ConfigSpace, optimizer: str
    ) -> OptimizationResult:
        valid = [t for t in trials if np.isfinite(t.score)]
        if valid:
            best = max(valid, key=lambda t: t.score)
            best_config, best_score = best.config, best.score
        else:
            best_config, best_score = space.default_configuration(), float("-inf")
        return OptimizationResult(
            best_config=best_config,
            best_score=best_score,
            trials=trials,
            elapsed=budget.elapsed,
            optimizer=optimizer,
        )
