"""Shared machinery for HPO optimizers: problems, trials, budgets, results.

Section II-B of the paper defines an HPO problem ``P = (D, A, PN)`` whose goal
is ``argmax f(λ, A, D)``.  Here the problem is abstracted one step further:
an :class:`HPOProblem` wraps *any* objective ``f(config) -> float`` to be
maximised over a :class:`~repro.hpo.space.ConfigSpace`, because the paper
reuses the same machinery for feature selection (Algorithm 2), architecture
search (Algorithm 3) and hyperparameter tuning (Algorithm 5).

Every evaluation is executed by a
:class:`~repro.execution.engine.EvaluationEngine` (one is created implicitly
when a plain objective is given), which provides memoization, batch/parallel
evaluation and centralized budget + crash accounting.  Optimizers implement
``_optimize``; the public :meth:`BaseOptimizer.optimize` entry always starts
the budget clock, so elapsed times never include setup work done before the
search began.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .. import obs
from ..execution.budget import Budget
from ..execution.cache import config_fingerprint
from ..execution.engine import EvaluationEngine
from .space import ConfigSpace

__all__ = ["Trial", "HPOProblem", "OptimizationResult", "Budget", "BaseOptimizer"]


@dataclass
class Trial:
    """One evaluated configuration."""

    config: dict[str, Any]
    score: float
    elapsed: float = 0.0
    iteration: int = 0
    cached: bool = False


class HPOProblem:
    """A black-box maximisation problem over a configuration space.

    Either a plain ``objective`` callable or a pre-built ``engine`` may be
    given; with a plain objective the problem constructs a serial, cached
    :class:`EvaluationEngine` around it.  Passing an engine lets callers share
    one cache/fold-plan/worker pool across probes, seeding and optimization
    (the UDR and the baselines do exactly that).
    """

    def __init__(
        self,
        space: ConfigSpace,
        objective: Callable[[dict[str, Any]], float] | None = None,
        name: str = "hpo-problem",
        engine: EvaluationEngine | None = None,
    ) -> None:
        if len(space) == 0:
            raise ValueError("configuration space is empty")
        if engine is None:
            if objective is None:
                raise ValueError("either objective or engine must be given")
            engine = EvaluationEngine(objective, name=name)
        self.space = space
        self.engine = engine
        self.name = name

    @property
    def objective(self) -> Callable[[dict[str, Any]], float]:
        return self.engine.objective

    def evaluate(self, config: dict[str, Any]) -> float:
        """Evaluate ``config``; crashes count as the worst possible score."""
        return self.engine.evaluate(config).score

    def evaluate_many(
        self, configs: Sequence[dict[str, Any]], budget: Budget | None = None
    ):
        """Batch-evaluate ``configs`` (see :meth:`EvaluationEngine.evaluate_many`)."""
        return self.engine.evaluate_many(configs, budget=budget)


@dataclass
class OptimizationResult:
    """Outcome of an optimizer run: best configuration plus the full history."""

    best_config: dict[str, Any]
    best_score: float
    trials: list[Trial] = field(default_factory=list)
    elapsed: float = 0.0
    optimizer: str = ""
    engine_stats: dict = field(default_factory=dict)

    @property
    def n_evaluations(self) -> int:
        return len(self.trials)

    def history(self) -> np.ndarray:
        """Running best score after each evaluation (for convergence plots)."""
        best = -np.inf
        out = []
        for trial in self.trials:
            best = max(best, trial.score)
            out.append(best)
        return np.array(out)

    def top_k(self, k: int = 5) -> list[Trial]:
        return sorted(self.trials, key=lambda t: t.score, reverse=True)[:k]


class BaseOptimizer:
    """Interface shared by GridSearch, RandomSearch, GeneticAlgorithm and BO.

    ``warm_start`` asks the optimizer to seed its search with up to that many
    of the best configurations a prior run left in the engine's
    :class:`~repro.execution.store.ResultStore` (0, the default, disables
    seeding and keeps trajectories identical to earlier releases).  Seeded
    configurations are re-evaluated through the engine — on a warm-started
    engine that re-ranking costs only store lookups — before fresh sampling
    begins, so a repeat run starts from the previous run's frontier instead
    of from scratch.
    """

    name = "base"

    def __init__(self, random_state: int | None = None, warm_start: int = 0) -> None:
        if warm_start < 0:
            raise ValueError("warm_start must be >= 0")
        self.random_state = random_state
        self.warm_start = int(warm_start)

    def optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        """Run the search; the budget clock always starts here.

        ``Budget.start`` is idempotent, so evaluations already recorded against
        the budget (e.g. the UDR's probe evaluations) keep counting.
        """
        budget.start()
        with obs.span(
            "optimizer.run",
            attrs={"optimizer": self.name, "problem": problem.name},
        ) as span:
            result = self._optimize(problem, budget)
            span.set_attribute("best_score", result.best_score)
            span.set_attribute("n_trials", result.n_evaluations)
            return result

    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        raise NotImplementedError

    # -- helpers shared by subclasses ------------------------------------------------
    def _warm_start_configs(self, problem: HPOProblem) -> list[dict[str, Any]]:
        """Valid, deduplicated prior-run bests to seed the search with.

        Keys outside the problem's space (e.g. the successive-halving fidelity
        key) are stripped before validation; anything that no longer fits the
        space — the store may predate a space change — is silently dropped.
        """
        if not self.warm_start:
            return []
        seeds: list[dict[str, Any]] = []
        seen: set[tuple] = set()
        for config in problem.engine.warm_start_configs(self.warm_start):
            config = {k: v for k, v in config.items() if k in problem.space}
            if not problem.space.validate(config):
                continue
            fingerprint = config_fingerprint(config)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            seeds.append(config)
        return seeds

    def _evaluate(
        self,
        problem: HPOProblem,
        config: dict[str, Any],
        budget: Budget,
        trials: list[Trial],
        iteration: int,
    ) -> float:
        with obs.span(
            "optimizer.iteration",
            attrs={"optimizer": self.name, "iteration": iteration, "n_configs": 1},
        ):
            outcome = problem.engine.evaluate(config, budget=budget)
        trials.append(
            Trial(
                config=dict(config),
                score=outcome.score,
                elapsed=outcome.elapsed,
                iteration=iteration,
                cached=outcome.cached,
            )
        )
        return outcome.score

    def _evaluate_many(
        self,
        problem: HPOProblem,
        configs: Sequence[dict[str, Any]],
        budget: Budget,
        trials: list[Trial],
        iteration: int | Sequence[int] = 0,
    ) -> list[float | None]:
        """Batch-evaluate ``configs``, appending trials for evaluated ones.

        Returns one score per input configuration; entries skipped because the
        budget ran out mid-batch are ``None`` (always a suffix).  ``iteration``
        may be a single number or a per-config sequence.
        """
        iterations = (
            list(iteration)
            if isinstance(iteration, Sequence)
            else [iteration] * len(configs)
        )
        with obs.span(
            "optimizer.iteration",
            attrs={
                "optimizer": self.name,
                "iteration": iterations[0] if iterations else 0,
                "n_configs": len(configs),
            },
        ):
            outcomes = problem.engine.evaluate_many(configs, budget=budget)
        scores: list[float | None] = []
        for config, outcome, it in zip(configs, outcomes, iterations):
            if outcome is None:
                scores.append(None)
                continue
            trials.append(
                Trial(
                    config=dict(config),
                    score=outcome.score,
                    elapsed=outcome.elapsed,
                    iteration=it,
                    cached=outcome.cached,
                )
            )
            scores.append(outcome.score)
        return scores

    @staticmethod
    def _finalize(
        trials: list[Trial], budget: Budget, problem: HPOProblem, optimizer: str
    ) -> OptimizationResult:
        valid = [t for t in trials if np.isfinite(t.score)]
        if valid:
            best = max(valid, key=lambda t: t.score)
            best_config, best_score = best.config, best.score
        else:
            best_config, best_score = problem.space.default_configuration(), float("-inf")
        return OptimizationResult(
            best_config=best_config,
            best_score=best_score,
            trials=trials,
            elapsed=budget.elapsed,
            optimizer=optimizer,
            engine_stats=problem.engine.stats.as_dict(),
        )
