"""Random search (RS) — Section II-A's history-free baseline."""

from __future__ import annotations

import numpy as np

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["RandomSearch"]


class RandomSearch(BaseOptimizer):
    """Sample configurations uniformly at random until the budget is exhausted."""

    name = "random-search"

    def __init__(self, random_state: int | None = None) -> None:
        super().__init__(random_state=random_state)

    def optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        budget.start()
        rng = np.random.default_rng(self.random_state)
        trials: list[Trial] = []
        iteration = 0
        # Always evaluate the default configuration first: it is a cheap,
        # sensible anchor and guarantees at least one trial even under a
        # vanishingly small budget.
        self._evaluate(problem, problem.space.default_configuration(), budget, trials, iteration)
        while not budget.exhausted():
            iteration += 1
            config = problem.space.sample(rng)
            self._evaluate(problem, config, budget, trials, iteration)
        return self._finalize(trials, budget, problem.space, self.name)
