"""Random search (RS) — Section II-A's history-free baseline."""

from __future__ import annotations

import numpy as np

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["RandomSearch"]


class RandomSearch(BaseOptimizer):
    """Sample configurations uniformly at random until the budget is exhausted.

    Samples are drawn in rounds of the engine's worker count, so a parallel
    engine evaluates them concurrently; the sampling sequence (and therefore
    the search trajectory) is identical at any worker count.
    """

    name = "random-search"

    def __init__(self, random_state: int | None = None, warm_start: int = 0) -> None:
        super().__init__(random_state=random_state, warm_start=warm_start)

    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        rng = np.random.default_rng(self.random_state)
        trials: list[Trial] = []
        iteration = 0
        # Always evaluate the default configuration first: it is a cheap,
        # sensible anchor and guarantees at least one trial even under a
        # vanishingly small budget.
        self._evaluate(problem, problem.space.default_configuration(), budget, trials, iteration)
        seeds = self._warm_start_configs(problem)
        if seeds and not budget.exhausted():
            # Prior-run bests are re-ranked (one batch) before fresh sampling.
            self._evaluate_many(problem, seeds, budget, trials, iteration=iteration)
        batch = max(1, problem.engine.n_workers)
        while not budget.exhausted():
            configs = [problem.space.sample(rng) for _ in range(batch)]
            iterations = range(iteration + 1, iteration + 1 + batch)
            self._evaluate_many(problem, configs, budget, trials, iteration=iterations)
            iteration += batch
        return self._finalize(trials, budget, problem, self.name)
