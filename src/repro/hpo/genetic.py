"""Genetic Algorithm (GA) optimizer.

Section II-A: GA "works by encoding hyperparameters and initializing
population, and then iteratively produces the next generation through
selection, crossover and mutation steps".  The paper uses GA with a group
(population) size of 50, 100 evolutionary epochs for feature selection, and an
early-stop criterion based on a precision threshold for architecture search —
all of which are exposed as parameters here.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(BaseOptimizer):
    """Elitist genetic algorithm with tournament selection, uniform crossover
    and per-parameter mutation over a :class:`~repro.hpo.space.ConfigSpace`.

    Parameters
    ----------
    population_size:
        Number of individuals per generation (the paper's "group size", 50).
    n_generations:
        Maximum number of generations ("evolutional epochs", 100).
    mutation_rate / mutation_scale:
        Per-parameter mutation probability and (for numeric parameters) the
        relative step size in unit space.
    crossover_rate:
        Probability that a child is produced by crossover (otherwise cloned).
    elite_fraction:
        Fraction of the best individuals copied unchanged into the next
        generation.
    tournament_size:
        Tournament selection pressure.
    target_score:
        Optional early-stop threshold: stop as soon as a configuration with
        score >= target is found (the ``Precision`` stop of Algorithm 3).
    """

    name = "genetic-algorithm"

    def __init__(
        self,
        population_size: int = 50,
        n_generations: int = 100,
        mutation_rate: float = 0.25,
        mutation_scale: float = 0.2,
        crossover_rate: float = 0.9,
        elite_fraction: float = 0.1,
        tournament_size: int = 3,
        target_score: float | None = None,
        random_state: int | None = None,
        warm_start: int = 0,
    ) -> None:
        super().__init__(random_state=random_state, warm_start=warm_start)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if n_generations < 1:
            raise ValueError("n_generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        self.population_size = population_size
        self.n_generations = n_generations
        self.mutation_rate = mutation_rate
        self.mutation_scale = mutation_scale
        self.crossover_rate = crossover_rate
        self.elite_fraction = elite_fraction
        self.tournament_size = tournament_size
        self.target_score = target_score

    # -- GA operators --------------------------------------------------------------
    def _tournament(
        self,
        population: list[dict[str, Any]],
        fitness: list[float],
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        contender_idx = rng.integers(0, len(population), size=min(self.tournament_size, len(population)))
        best = max(contender_idx, key=lambda i: fitness[i])
        return population[best]

    def _next_generation(
        self,
        population: list[dict[str, Any]],
        fitness: list[float],
        problem: HPOProblem,
        rng: np.random.Generator,
    ) -> list[dict[str, Any]]:
        space = problem.space
        order = np.argsort(fitness)[::-1]
        n_elite = max(1, int(round(self.elite_fraction * len(population))))
        next_population = [dict(population[i]) for i in order[:n_elite]]
        while len(next_population) < self.population_size:
            parent_a = self._tournament(population, fitness, rng)
            if rng.random() < self.crossover_rate:
                parent_b = self._tournament(population, fitness, rng)
                child = space.crossover(parent_a, parent_b, rng)
            else:
                child = dict(parent_a)
            child = space.mutate(child, rng, self.mutation_rate, self.mutation_scale)
            next_population.append(child)
        return next_population

    # -- main loop --------------------------------------------------------------------
    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        rng = np.random.default_rng(self.random_state)
        space = problem.space
        trials: list[Trial] = []

        population = [space.default_configuration()]
        # Prior-run bests join the initial population (displacing random
        # samples, never the default anchor or the population size).
        population += self._warm_start_configs(problem)[: self.population_size - 1]
        population += [
            space.sample(rng) for _ in range(self.population_size - len(population))
        ]

        # Generations are evaluated in waves of the engine's worker count so a
        # parallel engine fills its workers while target_score/budget checks
        # keep the seed's per-evaluation granularity on a serial engine (at
        # most n_workers - 1 evaluations overshoot the early-stop otherwise).
        wave = max(1, problem.engine.n_workers)
        stop = False
        for generation in range(self.n_generations):
            if stop or budget.exhausted():
                break
            fitness: list[float] = []
            for start in range(0, len(population), wave):
                if budget.exhausted():
                    stop = True
                    break
                scores = self._evaluate_many(
                    problem,
                    population[start : start + wave],
                    budget,
                    trials,
                    iteration=generation,
                )
                evaluated = [s for s in scores if s is not None]
                fitness.extend(s if s is not None else float("-inf") for s in scores)
                if self.target_score is not None and evaluated and (
                    max(evaluated) >= self.target_score
                ):
                    stop = True
                    break
                if any(s is None for s in scores):
                    stop = True
                    break
            if stop or budget.exhausted():
                break
            population = self._next_generation(population, fitness, problem, rng)
        if not trials:
            self._evaluate(problem, space.default_configuration(), budget, trials, 0)
        return self._finalize(trials, budget, problem, self.name)
