"""Grid search (GS) — Section II-A's exhaustive Cartesian-product baseline."""

from __future__ import annotations

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["GridSearch"]


class GridSearch(BaseOptimizer):
    """Evaluate the Cartesian product of per-parameter grids.

    The ``resolution`` parameter controls how many points each numeric
    hyperparameter is discretised into; categorical parameters always
    contribute all of their choices.  The whole grid is handed to the engine
    as one batch, so it is evaluated in parallel when the engine has workers.
    """

    name = "grid-search"

    def __init__(
        self, resolution: int = 3, max_configs: int = 2000, warm_start: int = 0
    ) -> None:
        super().__init__(warm_start=warm_start)
        self.resolution = resolution
        self.max_configs = max_configs

    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        trials: list[Trial] = []
        # Prior-run bests go first so a budget that cannot afford the full
        # grid still re-ranks the known frontier before sweeping.
        configs = self._warm_start_configs(problem)
        configs += problem.space.grid(resolution=self.resolution, max_configs=self.max_configs)
        self._evaluate_many(
            problem, configs, budget, trials, iteration=range(len(configs))
        )
        if not trials:
            self._evaluate(problem, problem.space.default_configuration(), budget, trials, 0)
        return self._finalize(trials, budget, problem, self.name)
