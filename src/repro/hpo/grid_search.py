"""Grid search (GS) — Section II-A's exhaustive Cartesian-product baseline."""

from __future__ import annotations

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial

__all__ = ["GridSearch"]


class GridSearch(BaseOptimizer):
    """Evaluate the Cartesian product of per-parameter grids.

    The ``resolution`` parameter controls how many points each numeric
    hyperparameter is discretised into; categorical parameters always
    contribute all of their choices.
    """

    name = "grid-search"

    def __init__(self, resolution: int = 3, max_configs: int = 2000) -> None:
        super().__init__()
        self.resolution = resolution
        self.max_configs = max_configs

    def optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        budget.start()
        trials: list[Trial] = []
        configs = problem.space.grid(resolution=self.resolution, max_configs=self.max_configs)
        for iteration, config in enumerate(configs):
            if budget.exhausted():
                break
            self._evaluate(problem, config, budget, trials, iteration)
        if not trials:
            self._evaluate(problem, problem.space.default_configuration(), budget, trials, 0)
        return self._finalize(trials, budget, problem.space, self.name)
