"""Hyperparameter-optimization substrate (Section II of the paper).

Provides the configuration-space abstraction plus the four HPO techniques the
paper discusses — Grid Search, Random Search, the Genetic Algorithm and
GP-based Bayesian Optimization — together with the GA-vs-BO selection rule
used by Auto-Model's UDR stage.
"""

from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial
from .bayesian import BayesianOptimization, expected_improvement
from .genetic import GeneticAlgorithm
from .gp import GaussianProcess
from .grid_search import GridSearch
from .random_search import RandomSearch
from .selector import HPOTechniqueSelector, choose_hpo_technique
from .successive_halving import Hyperband, SuccessiveHalving
from .space import (
    BoolParam,
    CategoricalParam,
    Condition,
    ConfigSpace,
    FloatParam,
    Hyperparameter,
    IntParam,
)

__all__ = [
    "BaseOptimizer",
    "Budget",
    "HPOProblem",
    "OptimizationResult",
    "Trial",
    "BayesianOptimization",
    "expected_improvement",
    "GeneticAlgorithm",
    "GaussianProcess",
    "GridSearch",
    "RandomSearch",
    "HPOTechniqueSelector",
    "choose_hpo_technique",
    "Hyperband",
    "SuccessiveHalving",
    "BoolParam",
    "CategoricalParam",
    "Condition",
    "ConfigSpace",
    "FloatParam",
    "Hyperparameter",
    "IntParam",
]
