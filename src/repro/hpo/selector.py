"""Adaptive choice between GA and BO (Section III-D of the paper).

Algorithm 5 selects the HPO technique for the *final* tuning step by probing
how expensive a single configuration evaluation is on a small sample:

    "If the calculation of f(λ, SA, I) generally costs less than 10 minutes,
     then we set HPOAlg = GA, else HPOAlg = BO."

The 10-minute threshold of the paper is a parameter here (the reproduction's
datasets are much smaller, so the default threshold is scaled down), and the
probe measures the wall-clock time of a small number of default-configuration
evaluations.

When the caller supplies an :class:`~repro.execution.engine.EvaluationEngine`
(the UDR does), the probes run through it: their results land in the engine's
cache — so the optimizer's own evaluation of the default configuration is a
free cache hit instead of a repeated cross-validation run — and, if a
:class:`~repro.execution.budget.Budget` is also given, the probes are charged
against it rather than being free off-the-books evaluations.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .. import obs
from ..execution.budget import Budget
from ..execution.engine import EvaluationEngine
from .bayesian import BayesianOptimization
from .base import BaseOptimizer
from .genetic import GeneticAlgorithm
from .space import ConfigSpace

__all__ = ["HPOTechniqueSelector", "choose_hpo_technique"]

# The paper's threshold is 600 seconds on UCI-scale data with Weka learners;
# our from-scratch learners on synthetic data are far cheaper, so the default
# probe threshold is scaled down while keeping the same decision structure.
DEFAULT_EVALUATION_TIME_THRESHOLD = 2.0


class HPOTechniqueSelector:
    """Probe evaluation cost and return a configured GA or BO optimizer."""

    def __init__(
        self,
        time_threshold: float = DEFAULT_EVALUATION_TIME_THRESHOLD,
        n_probes: int = 2,
        ga_population: int = 20,
        ga_generations: int = 50,
        bo_initial: int = 8,
        random_state: int | None = None,
        warm_start: int = 0,
    ) -> None:
        if time_threshold <= 0:
            raise ValueError("time_threshold must be positive")
        if n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        self.time_threshold = time_threshold
        self.n_probes = n_probes
        self.ga_population = ga_population
        self.ga_generations = ga_generations
        self.bo_initial = bo_initial
        self.random_state = random_state
        self.warm_start = int(warm_start)

    def probe_evaluation_time(
        self,
        space: ConfigSpace,
        objective: Callable[[dict[str, Any]], float] | None = None,
        *,
        engine: EvaluationEngine | None = None,
        budget: Budget | None = None,
    ) -> float:
        """Average wall-clock seconds of ``n_probes`` default-config evaluations.

        With an ``engine``, probes bypass the cache for *reading* (a cached
        score would make the timing meaningless) but still write their result
        to it, seeding the subsequent optimization; a ``budget`` charges the
        probes as real evaluations.  Without an engine the raw objective is
        timed directly (crashes tolerated), as before.
        """
        config = space.default_configuration()
        if engine is not None:
            total = 0.0
            for _ in range(self.n_probes):
                total += engine.evaluate(config, budget=budget, use_cache=False).elapsed
            return total / self.n_probes
        if objective is None:
            raise ValueError("either objective or engine must be given")
        total = 0.0
        for _ in range(self.n_probes):
            start = time.monotonic()
            try:
                objective(config)
            except Exception as exc:  # noqa: BLE001 — probe cost, not control flow
                obs.error_event("selector.probe", exc)
            total += time.monotonic() - start
        return total / self.n_probes

    def select(
        self,
        space: ConfigSpace,
        objective: Callable[[dict[str, Any]], float] | None = None,
        *,
        engine: EvaluationEngine | None = None,
        budget: Budget | None = None,
    ) -> BaseOptimizer:
        """Return a GA when evaluations are cheap and a BO optimizer otherwise."""
        mean_time = self.probe_evaluation_time(
            space, objective, engine=engine, budget=budget
        )
        if mean_time < self.time_threshold:
            return GeneticAlgorithm(
                population_size=self.ga_population,
                n_generations=self.ga_generations,
                random_state=self.random_state,
                warm_start=self.warm_start,
            )
        return BayesianOptimization(
            n_initial=self.bo_initial,
            random_state=self.random_state,
            warm_start=self.warm_start,
        )


def choose_hpo_technique(
    space: ConfigSpace,
    objective: Callable[[dict[str, Any]], float] | None = None,
    time_threshold: float = DEFAULT_EVALUATION_TIME_THRESHOLD,
    random_state: int | None = None,
    *,
    engine: EvaluationEngine | None = None,
    budget: Budget | None = None,
) -> BaseOptimizer:
    """Convenience wrapper around :class:`HPOTechniqueSelector`."""
    selector = HPOTechniqueSelector(
        time_threshold=time_threshold, random_state=random_state
    )
    return selector.select(space, objective, engine=engine, budget=budget)
