"""Gaussian-process surrogate model used by Bayesian optimization.

A small, dependency-light GP regressor with a Matern-5/2 (or RBF) kernel over
the unit hypercube encoding of configurations, with observation noise and a
simple median-heuristic length scale.  This is the "probabilistic surrogate
model" of Section II-A's description of BO.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["GaussianProcess"]


class GaussianProcess:
    """GP regressor with constant mean and Matern-5/2 or RBF kernel."""

    def __init__(
        self,
        kernel: str = "matern52",
        length_scale: float | None = None,
        noise: float = 1e-6,
        signal_variance: float = 1.0,
    ) -> None:
        if kernel not in ("matern52", "rbf"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        self.length_scale = length_scale
        self.noise = noise
        self.signal_variance = signal_variance
        self._fitted = False

    # -- kernels ---------------------------------------------------------------------
    def _distances(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        a2 = np.sum(A * A, axis=1)[:, None]
        b2 = np.sum(B * B, axis=1)[None, :]
        return np.sqrt(np.clip(a2 + b2 - 2.0 * (A @ B.T), 0.0, None))

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d = self._distances(A, B) / self._length_scale
        if self.kernel == "rbf":
            return self.signal_variance * np.exp(-0.5 * d * d)
        sqrt5 = np.sqrt(5.0)
        return (
            self.signal_variance
            * (1.0 + sqrt5 * d + 5.0 / 3.0 * d * d)
            * np.exp(-sqrt5 * d)
        )

    # -- fitting ---------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        self._X = X
        self._y_mean = float(y.mean()) if y.size else 0.0
        self._y_std = float(y.std()) if y.std() > 0 else 1.0
        self._y = (y - self._y_mean) / self._y_std

        if self.length_scale is not None:
            self._length_scale = float(self.length_scale)
        else:
            distances = self._distances(X, X)
            positive = distances[distances > 0]
            self._length_scale = float(np.median(positive)) if positive.size else 1.0
            self._length_scale = max(self._length_scale, 1e-3)

        K = self._kernel_matrix(X, X) + (self.noise + 1e-8) * np.eye(X.shape[0])
        try:
            self._chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            K += 1e-4 * np.eye(X.shape[0])
            self._chol = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y)
        self._fitted = True
        return self

    # -- prediction -------------------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = True):
        """Return the posterior mean (and optionally standard deviation)."""
        if not self._fitted:
            raise RuntimeError("GaussianProcess is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        K_star = self._kernel_matrix(X, self._X)
        mean = K_star @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        prior_var = np.full(X.shape[0], self.signal_variance)
        var = np.clip(prior_var - np.sum(v * v, axis=0), 1e-12, None)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the (standardised) training targets."""
        if not self._fitted:
            raise RuntimeError("GaussianProcess is not fitted")
        n = self._X.shape[0]
        return float(
            -0.5 * self._y @ self._alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
