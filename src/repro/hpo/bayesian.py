"""Bayesian Optimization (BO) with a GP surrogate and Expected Improvement.

Section II-A: "BO works by fitting a probabilistic surrogate model to all
observations of the target black box function made so far, and then using the
predictive distribution of the probabilistic model, to decide which point to
evaluate next."  The surrogate is :class:`~repro.hpo.gp.GaussianProcess`, the
acquisition function is Expected Improvement maximised over a random candidate
pool (a standard, derivative-free approach well suited to mixed spaces).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import stats

from .. import obs
from .base import BaseOptimizer, Budget, HPOProblem, OptimizationResult, Trial
from .gp import GaussianProcess

__all__ = ["BayesianOptimization", "expected_improvement"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Expected improvement of candidates over the incumbent ``best`` (maximisation)."""
    std = np.clip(std, 1e-12, None)
    improvement = mean - best - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


class BayesianOptimization(BaseOptimizer):
    """GP-EI Bayesian optimization over a :class:`~repro.hpo.space.ConfigSpace`.

    Parameters
    ----------
    n_initial:
        Number of random configurations evaluated before the surrogate is used.
    n_candidates:
        Size of the random candidate pool scored by the acquisition function at
        each iteration.
    xi:
        Exploration bonus in the EI acquisition.
    max_model_size:
        The GP is cubic in the number of observations; older observations are
        subsampled beyond this size to bound per-iteration analysis time.
    """

    name = "bayesian-optimization"

    def __init__(
        self,
        n_initial: int = 8,
        n_candidates: int = 256,
        xi: float = 0.01,
        kernel: str = "matern52",
        max_model_size: int = 200,
        random_state: int | None = None,
        warm_start: int = 0,
    ) -> None:
        super().__init__(random_state=random_state, warm_start=warm_start)
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2")
        if n_candidates < 8:
            raise ValueError("n_candidates must be >= 8")
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.xi = xi
        self.kernel = kernel
        self.max_model_size = max_model_size

    def _suggest(
        self,
        problem: HPOProblem,
        observed_X: list[np.ndarray],
        observed_y: list[float],
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        space = problem.space
        finite = [(x, y) for x, y in zip(observed_X, observed_y) if np.isfinite(y)]
        if len(finite) < 2:
            return space.sample(rng)
        if len(finite) > self.max_model_size:
            keep = rng.choice(len(finite), size=self.max_model_size, replace=False)
            finite = [finite[i] for i in keep]
        X = np.vstack([x for x, _ in finite])
        y = np.array([y for _, y in finite])
        try:
            surrogate = GaussianProcess(kernel=self.kernel).fit(X, y)
        except Exception as exc:  # noqa: BLE001 — fall back to random sampling
            obs.error_event("bayesian.surrogate_fit", exc)
            return space.sample(rng)
        candidates = [space.sample(rng) for _ in range(self.n_candidates)]
        # Local perturbations of the incumbent sharpen exploitation.
        incumbent = space.from_vector(X[int(np.argmax(y))])
        candidates += [
            space.mutate(incumbent, rng, mutation_rate=0.3, scale=0.1) for _ in range(16)
        ]
        candidate_matrix = np.vstack([space.to_vector(c) for c in candidates])
        mean, std = surrogate.predict(candidate_matrix)
        acquisition = expected_improvement(mean, std, best=float(np.max(y)), xi=self.xi)
        return candidates[int(np.argmax(acquisition))]

    def _optimize(self, problem: HPOProblem, budget: Budget) -> OptimizationResult:
        rng = np.random.default_rng(self.random_state)
        space = problem.space
        trials: list[Trial] = []
        observed_X: list[np.ndarray] = []
        observed_y: list[float] = []

        # The initial design is model-free, so it is one engine batch and
        # runs in parallel when the engine has workers.  Prior-run bests are
        # folded in ahead of random samples: the surrogate then conditions on
        # the previous run's frontier from its very first proposal.
        initial = [space.default_configuration()]
        initial += self._warm_start_configs(problem)
        initial += [
            space.sample(rng) for _ in range(self.n_initial - len(initial))
        ]
        scores = self._evaluate_many(problem, initial, budget, trials, iteration=0)
        for config, score in zip(initial, scores):
            if score is None:
                break
            observed_X.append(space.to_vector(config))
            observed_y.append(score)
        # The surrogate-guided phase is inherently sequential: each proposal
        # conditions on every observation made so far.
        iteration = 0
        while not budget.exhausted():
            iteration += 1
            config = self._suggest(problem, observed_X, observed_y, rng)
            score = self._evaluate(problem, config, budget, trials, iteration)
            observed_X.append(space.to_vector(config))
            observed_y.append(score)
        if not trials:
            self._evaluate(problem, space.default_configuration(), budget, trials, 0)
        return self._finalize(trials, budget, problem, self.name)
