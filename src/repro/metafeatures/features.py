"""The 23 task-instance features of Table III (f1 … f23).

Each feature is a function of a :class:`~repro.datasets.dataset.Dataset`.
Notation from the paper:

* ``AT`` — the target attribute; ``AT[n]`` its number of classes.
* ``ANList`` / ``ACList`` — numeric / categorical common attributes.
* ``A#`` — the categorical common attribute with the fewest classes,
  ``A?`` — the one with the most classes.
* ``H(·)`` — Shannon entropy of a categorical attribute's value distribution.

Features that reference an empty attribute list (e.g. f10–f17 when there are
no categorical attributes, f18–f23 when there are no numeric attributes) are
defined as 0, so every dataset maps to a complete 23-dimensional vector.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from ..datasets.dataset import Dataset

__all__ = ["FEATURE_NAMES", "FEATURE_FUNCTIONS", "FEATURE_DESCRIPTIONS", "compute_feature"]


def _entropy_of_values(values: np.ndarray) -> float:
    _, counts = np.unique(values, return_counts=True)
    p = counts / counts.sum()
    return float(-np.sum(p * np.log2(p)))


def _target_proportions(dataset: Dataset) -> np.ndarray:
    _, counts = np.unique(dataset.target, return_counts=True)
    return counts / dataset.n_records


def _categorical_cardinalities(dataset: Dataset) -> np.ndarray:
    if dataset.n_categorical == 0:
        return np.array([])
    return np.array(
        [len(np.unique(dataset.categorical[:, j])) for j in range(dataset.n_categorical)]
    )


def _extreme_categorical_column(dataset: Dataset, mode: str) -> np.ndarray | None:
    """Return the values of A# (mode='min') or A? (mode='max'), or None."""
    cardinalities = _categorical_cardinalities(dataset)
    if cardinalities.size == 0:
        return None
    index = int(np.argmin(cardinalities)) if mode == "min" else int(np.argmax(cardinalities))
    return dataset.categorical[:, index]


def _column_proportions(values: np.ndarray) -> np.ndarray:
    _, counts = np.unique(values, return_counts=True)
    return counts / len(values)


def _numeric_averages(dataset: Dataset) -> np.ndarray:
    if dataset.n_numeric == 0:
        return np.array([])
    numeric = dataset.numeric
    if not np.isnan(numeric).any():
        # Clean data takes the historical path so the feature vectors feeding
        # existing decision models stay bit-identical.
        return numeric.mean(axis=0)
    return _nan_reduce(numeric, np.nanmean)


def _numeric_variances(dataset: Dataset) -> np.ndarray:
    if dataset.n_numeric == 0:
        return np.array([])
    numeric = dataset.numeric
    if not np.isnan(numeric).any():
        return numeric.var(axis=0)
    return _nan_reduce(numeric, np.nanvar)


def _nan_reduce(numeric: np.ndarray, reducer) -> np.ndarray:
    """Column statistics over the observed values; all-missing columns are 0.

    Messy task instances (MCAR missingness from ``datasets.corrupt``) must
    still map to a complete, finite feature vector — the decision model
    cannot score NaNs — so missing entries are simply excluded, matching how
    the empty-attribute-list features default to 0.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        values = reducer(numeric, axis=0)
    return np.where(np.isnan(values), 0.0, values)


# -- the 23 features -----------------------------------------------------------------

def f1(d: Dataset) -> float:
    """Number of classes in the target attribute."""
    return float(d.n_classes)


def f2(d: Dataset) -> float:
    """Entropy of the target class distribution."""
    return _entropy_of_values(d.target)


def f3(d: Dataset) -> float:
    """Proportion of the majority target class."""
    return float(_target_proportions(d).max())


def f4(d: Dataset) -> float:
    """Proportion of the minority target class."""
    return float(_target_proportions(d).min())


def f5(d: Dataset) -> float:
    """Number of numeric attributes."""
    return float(d.n_numeric)


def f6(d: Dataset) -> float:
    """Number of categorical attributes."""
    return float(d.n_categorical)


def f7(d: Dataset) -> float:
    """Proportion of numeric attributes among all common attributes."""
    return float(d.n_numeric / d.n_attributes) if d.n_attributes else 0.0


def f8(d: Dataset) -> float:
    """Number of common attributes."""
    return float(d.n_attributes)


def f9(d: Dataset) -> float:
    """Number of records."""
    return float(d.n_records)


def f10(d: Dataset) -> float:
    """Cardinality of the categorical attribute with the fewest classes (A#)."""
    cardinalities = _categorical_cardinalities(d)
    return float(cardinalities.min()) if cardinalities.size else 0.0


def f11(d: Dataset) -> float:
    """Entropy of A#."""
    column = _extreme_categorical_column(d, "min")
    return _entropy_of_values(column) if column is not None else 0.0


def f12(d: Dataset) -> float:
    """Majority-value proportion of A#."""
    column = _extreme_categorical_column(d, "min")
    return float(_column_proportions(column).max()) if column is not None else 0.0


def f13(d: Dataset) -> float:
    """Minority-value proportion of A#."""
    column = _extreme_categorical_column(d, "min")
    return float(_column_proportions(column).min()) if column is not None else 0.0


def f14(d: Dataset) -> float:
    """Cardinality of the categorical attribute with the most classes (A?)."""
    cardinalities = _categorical_cardinalities(d)
    return float(cardinalities.max()) if cardinalities.size else 0.0


def f15(d: Dataset) -> float:
    """Entropy of A?."""
    column = _extreme_categorical_column(d, "max")
    return _entropy_of_values(column) if column is not None else 0.0


def f16(d: Dataset) -> float:
    """Majority-value proportion of A?."""
    column = _extreme_categorical_column(d, "max")
    return float(_column_proportions(column).max()) if column is not None else 0.0


def f17(d: Dataset) -> float:
    """Minority-value proportion of A?."""
    column = _extreme_categorical_column(d, "max")
    return float(_column_proportions(column).min()) if column is not None else 0.0


def f18(d: Dataset) -> float:
    """Minimum of the per-attribute averages of the numeric attributes."""
    averages = _numeric_averages(d)
    return float(averages.min()) if averages.size else 0.0


def f19(d: Dataset) -> float:
    """Maximum of the per-attribute averages of the numeric attributes."""
    averages = _numeric_averages(d)
    return float(averages.max()) if averages.size else 0.0


def f20(d: Dataset) -> float:
    """Minimum of the per-attribute variances of the numeric attributes."""
    variances = _numeric_variances(d)
    return float(variances.min()) if variances.size else 0.0


def f21(d: Dataset) -> float:
    """Maximum of the per-attribute variances of the numeric attributes."""
    variances = _numeric_variances(d)
    return float(variances.max()) if variances.size else 0.0


def f22(d: Dataset) -> float:
    """Variance of the per-attribute averages of the numeric attributes."""
    averages = _numeric_averages(d)
    return float(averages.var()) if averages.size else 0.0


def f23(d: Dataset) -> float:
    """Variance of the per-attribute variances of the numeric attributes."""
    variances = _numeric_variances(d)
    return float(variances.var()) if variances.size else 0.0


FEATURE_FUNCTIONS: dict[str, Callable[[Dataset], float]] = {
    f"f{i}": globals()[f"f{i}"] for i in range(1, 24)
}
FEATURE_NAMES: list[str] = list(FEATURE_FUNCTIONS)
FEATURE_DESCRIPTIONS: dict[str, str] = {
    name: (func.__doc__ or "").strip() for name, func in FEATURE_FUNCTIONS.items()
}


def compute_feature(name: str, dataset: Dataset) -> float:
    """Compute a single named feature (``'f1'`` … ``'f23'``) for ``dataset``."""
    if name not in FEATURE_FUNCTIONS:
        raise KeyError(f"unknown feature {name!r}; known: {FEATURE_NAMES}")
    return FEATURE_FUNCTIONS[name](dataset)
