"""Task-instance meta-features (Table III of the paper)."""

from .extractor import FeatureCache, FeatureCacheStats, FeatureExtractor, feature_cache
from .features import FEATURE_DESCRIPTIONS, FEATURE_FUNCTIONS, FEATURE_NAMES, compute_feature

__all__ = [
    "FeatureExtractor",
    "FeatureCache",
    "FeatureCacheStats",
    "feature_cache",
    "FEATURE_DESCRIPTIONS",
    "FEATURE_FUNCTIONS",
    "FEATURE_NAMES",
    "compute_feature",
]
