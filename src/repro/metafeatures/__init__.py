"""Task-instance meta-features (Table III of the paper)."""

from .extractor import FeatureExtractor
from .features import FEATURE_DESCRIPTIONS, FEATURE_FUNCTIONS, FEATURE_NAMES, compute_feature

__all__ = [
    "FeatureExtractor",
    "FEATURE_DESCRIPTIONS",
    "FEATURE_FUNCTIONS",
    "FEATURE_NAMES",
    "compute_feature",
]
