"""Task-instance feature extraction (the ``Fs(I)`` / ``KFs(I)`` of the paper).

Every online recommendation starts by computing the Table III meta-features
of the user's dataset, which makes :meth:`FeatureExtractor.raw_vector` the
hot path of the serving subsystem.  The module therefore keeps a process-wide
:class:`FeatureCache`: raw (pre-normalisation) feature values memoized per
``(dataset.fingerprint, feature_name)``, so repeat queries for the same data
— and extractors restricted to feature subsets — never recompute a feature.
Normalisation stays outside the cache (it is per-extractor state).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..datasets.dataset import Dataset
from .features import FEATURE_FUNCTIONS, FEATURE_NAMES

__all__ = ["FeatureExtractor", "FeatureCache", "FeatureCacheStats", "feature_cache"]


@dataclass
class FeatureCacheStats:
    """Counters the process-wide feature cache accumulates (engine-style)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
        }


class FeatureCache:
    """Bounded, thread-safe memo of raw meta-feature values.

    Keys are ``(dataset.fingerprint, feature_name)`` so the memo is shared by
    every extractor in the process, including :meth:`FeatureExtractor.restrict`
    subsets.  LRU eviction bounds memory for long-lived serving processes.
    """

    def __init__(self, maxsize: int = 100_000) -> None:
        self.maxsize = int(maxsize)
        self._enabled = True
        self._disabled_depth = 0
        self.stats = FeatureCacheStats()
        self._lock = threading.Lock()
        self._values: OrderedDict[tuple[str, str], float] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self._enabled and self._disabled_depth == 0

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def clear(self) -> None:
        """Drop every cached value (stats are kept)."""
        with self._lock:
            self._values.clear()

    def reset_stats(self) -> None:
        self.stats = FeatureCacheStats()

    @contextmanager
    def disabled(self):
        """Context manager bypassing the cache (used by benchmarks/baselines).

        Depth-counted rather than save/restore, so overlapping ``disabled()``
        sections on different threads compose: the cache is off while any
        section is active and back on when the last one exits.
        """
        with self._lock:
            self._disabled_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._disabled_depth -= 1

    def vector(self, dataset: Dataset, feature_names: list[str]) -> np.ndarray:
        """Raw feature vector for ``dataset``, served from the memo."""
        fingerprint = dataset.fingerprint
        values = np.empty(len(feature_names), dtype=np.float64)
        missing: list[tuple[int, str]] = []
        with self._lock:
            for position, name in enumerate(feature_names):
                key = (fingerprint, name)
                if key in self._values:
                    self._values.move_to_end(key)
                    values[position] = self._values[key]
                    self.stats.hits += 1
                else:
                    missing.append((position, name))
                    self.stats.misses += 1
        for position, name in missing:
            values[position] = float(FEATURE_FUNCTIONS[name](dataset))
        if missing:
            with self._lock:
                for position, name in missing:
                    self._values[(fingerprint, name)] = values[position]
                    self._values.move_to_end((fingerprint, name))
                while len(self._values) > self.maxsize:
                    self._values.popitem(last=False)
                    self.stats.evictions += 1
        return values


#: Process-wide raw-feature memo shared by every extractor.
feature_cache = FeatureCache()


class FeatureExtractor:
    """Compute a fixed subset of the Table III features as a dense vector.

    Parameters
    ----------
    feature_names:
        Ordered list of feature names to extract; defaults to all 23.
    normalize:
        When ``True`` (the default for model training), features are scaled
        with statistics learned from a reference collection via :meth:`fit`,
        so that count-like features (f9 = number of records) do not dominate
        proportion-like ones.
    """

    def __init__(self, feature_names: list[str] | None = None, normalize: bool = True) -> None:
        names = list(feature_names) if feature_names is not None else list(FEATURE_NAMES)
        unknown = [n for n in names if n not in FEATURE_FUNCTIONS]
        if unknown:
            raise ValueError(f"unknown features: {unknown}")
        if not names:
            raise ValueError("at least one feature is required")
        self.feature_names = names
        self.normalize = normalize
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # -- raw extraction ---------------------------------------------------------------
    def raw_vector(self, dataset: Dataset, use_cache: bool = True) -> np.ndarray:
        """Un-normalised feature vector in the order of ``feature_names``.

        Served from the process-wide :data:`feature_cache` (keyed by the
        dataset's content fingerprint) unless the cache is disabled or
        ``use_cache=False``.
        """
        if use_cache and feature_cache.enabled:
            return feature_cache.vector(dataset, self.feature_names)
        return np.array(
            [FEATURE_FUNCTIONS[name](dataset) for name in self.feature_names],
            dtype=np.float64,
        )

    def raw_matrix(self, datasets: list[Dataset]) -> np.ndarray:
        if not datasets:
            raise ValueError("empty dataset list")
        return np.vstack([self.raw_vector(d) for d in datasets])

    # -- normalisation ------------------------------------------------------------------
    def fit(self, datasets: list[Dataset]) -> "FeatureExtractor":
        """Learn normalisation statistics from a reference dataset collection."""
        matrix = self.raw_matrix(datasets)
        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        return self

    def transform(self, dataset: Dataset) -> np.ndarray:
        """Feature vector for one dataset (normalised if :meth:`fit` was called)."""
        vector = self.raw_vector(dataset)
        if self.normalize and self._mean is not None:
            vector = (vector - self._mean) / self._scale
        return vector

    def transform_many(self, datasets: list[Dataset]) -> np.ndarray:
        return np.vstack([self.transform(d) for d in datasets])

    def fit_transform(self, datasets: list[Dataset]) -> np.ndarray:
        return self.fit(datasets).transform_many(datasets)

    # -- subsetting ----------------------------------------------------------------------
    def restrict(self, feature_names: list[str]) -> "FeatureExtractor":
        """Return a new extractor over a subset of this one's features.

        Normalisation statistics are carried over for the retained features so
        a restriction of a fitted extractor is itself fitted.
        """
        missing = [n for n in feature_names if n not in self.feature_names]
        if missing:
            raise ValueError(f"features not present in this extractor: {missing}")
        restricted = FeatureExtractor(feature_names, normalize=self.normalize)
        if self._mean is not None:
            indices = [self.feature_names.index(n) for n in feature_names]
            restricted._mean = self._mean[indices]
            restricted._scale = self._scale[indices]
        return restricted

    def __len__(self) -> int:
        return len(self.feature_names)

    def __repr__(self) -> str:
        return f"FeatureExtractor({self.feature_names})"
