"""Task-instance feature extraction (the ``Fs(I)`` / ``KFs(I)`` of the paper)."""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import Dataset
from .features import FEATURE_FUNCTIONS, FEATURE_NAMES

__all__ = ["FeatureExtractor"]


class FeatureExtractor:
    """Compute a fixed subset of the Table III features as a dense vector.

    Parameters
    ----------
    feature_names:
        Ordered list of feature names to extract; defaults to all 23.
    normalize:
        When ``True`` (the default for model training), features are scaled
        with statistics learned from a reference collection via :meth:`fit`,
        so that count-like features (f9 = number of records) do not dominate
        proportion-like ones.
    """

    def __init__(self, feature_names: list[str] | None = None, normalize: bool = True) -> None:
        names = list(feature_names) if feature_names is not None else list(FEATURE_NAMES)
        unknown = [n for n in names if n not in FEATURE_FUNCTIONS]
        if unknown:
            raise ValueError(f"unknown features: {unknown}")
        if not names:
            raise ValueError("at least one feature is required")
        self.feature_names = names
        self.normalize = normalize
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # -- raw extraction ---------------------------------------------------------------
    def raw_vector(self, dataset: Dataset) -> np.ndarray:
        """Un-normalised feature vector in the order of ``feature_names``."""
        return np.array(
            [FEATURE_FUNCTIONS[name](dataset) for name in self.feature_names],
            dtype=np.float64,
        )

    def raw_matrix(self, datasets: list[Dataset]) -> np.ndarray:
        if not datasets:
            raise ValueError("empty dataset list")
        return np.vstack([self.raw_vector(d) for d in datasets])

    # -- normalisation ------------------------------------------------------------------
    def fit(self, datasets: list[Dataset]) -> "FeatureExtractor":
        """Learn normalisation statistics from a reference dataset collection."""
        matrix = self.raw_matrix(datasets)
        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        return self

    def transform(self, dataset: Dataset) -> np.ndarray:
        """Feature vector for one dataset (normalised if :meth:`fit` was called)."""
        vector = self.raw_vector(dataset)
        if self.normalize and self._mean is not None:
            vector = (vector - self._mean) / self._scale
        return vector

    def transform_many(self, datasets: list[Dataset]) -> np.ndarray:
        return np.vstack([self.transform(d) for d in datasets])

    def fit_transform(self, datasets: list[Dataset]) -> np.ndarray:
        return self.fit(datasets).transform_many(datasets)

    # -- subsetting ----------------------------------------------------------------------
    def restrict(self, feature_names: list[str]) -> "FeatureExtractor":
        """Return a new extractor over a subset of this one's features.

        Normalisation statistics are carried over for the retained features so
        a restriction of a fitted extractor is itself fitted.
        """
        missing = [n for n in feature_names if n not in self.feature_names]
        if missing:
            raise ValueError(f"features not present in this extractor: {missing}")
        restricted = FeatureExtractor(feature_names, normalize=self.normalize)
        if self._mean is not None:
            indices = [self.feature_names.index(n) for n in feature_names]
            restricted._mean = self._mean[indices]
            restricted._scale = self._scale[indices]
        return restricted

    def __len__(self) -> int:
        return len(self.feature_names)

    def __repr__(self) -> str:
        return f"FeatureExtractor({self.feature_names})"
