"""repro — a reproduction of Auto-Model (Wang et al., ICDE 2020).

Auto-Model solves the CASH problem (combined algorithm selection and
hyperparameter optimization) by mining research-paper experiment reports into
knowledge, training a neural decision model on dataset meta-features, and then
tuning only the selected algorithm's hyperparameters with a GA or Bayesian
optimizer.

Top-level layout:

* :mod:`repro.core` — Auto-Model itself (knowledge acquisition, DMD, UDR).
* :mod:`repro.execution` — the unified trial-execution engine (cache, folds,
  parallel batches, budgets) every evaluation runs through.
* :mod:`repro.learners` — the classifier and regressor catalogues (Weka
  replacement); :func:`repro.learners.registry_for_task` switches per task.
* :mod:`repro.hpo` — HPO techniques (GS, RS, GA, BO) and config spaces.
* :mod:`repro.metafeatures` — the 23 Table III task-instance features.
* :mod:`repro.corpus` — research-paper experiences and the simulated corpus.
* :mod:`repro.datasets` — task-instance containers (classification and
  regression, see :class:`repro.TaskType`) and synthetic suites.
* :mod:`repro.baselines` — Auto-WEKA-style joint CASH baselines.
* :mod:`repro.evaluation` — performance tables, PORatio, Table X comparisons.
* :mod:`repro.service` — the recommendation-serving subsystem (versioned
  model registry, batched dispatcher, async fit jobs, HTTP/JSON server).
"""

from . import (
    baselines,
    core,
    corpus,
    datasets,
    evaluation,
    execution,
    hpo,
    learners,
    metafeatures,
    service,
)
from .core.automodel import AutoModel
from .core.dmd import DecisionMakingModelDesigner
from .core.udr import CASHSolution, UserDemandResponser
from .datasets.dataset import Dataset
from .datasets.synthetic import corrupt
from .datasets.task import TaskType
from .execution import Budget, EvaluationEngine, ResultStore
from .learners.pipeline import Pipeline, make_pipeline_spec, pipeline_registry

__version__ = "1.6.0"

__all__ = [
    "AutoModel",
    "DecisionMakingModelDesigner",
    "CASHSolution",
    "UserDemandResponser",
    "Dataset",
    "TaskType",
    "Budget",
    "EvaluationEngine",
    "ResultStore",
    "Pipeline",
    "make_pipeline_spec",
    "pipeline_registry",
    "corrupt",
    "baselines",
    "core",
    "corpus",
    "datasets",
    "evaluation",
    "execution",
    "hpo",
    "learners",
    "metafeatures",
    "service",
    "__version__",
]
