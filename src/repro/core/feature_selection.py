"""Instance-feature selection (Algorithm 2).

The problem of choosing which of the 23 Table III features should represent a
task instance is cast as an HPO problem: every feature becomes a boolean
hyperparameter ("include this feature or not"), the model is an MLP classifier
with a default architecture, and the score of a feature subset is the k-fold
cross-validation accuracy of that MLP on the knowledge dataset
``{(F_sub(I_i), OA_{I_i})}``.  The paper solves this HPO problem with a GA
(group size 50, 100 epochs); the sizes are parameters here so tests can run
with smaller budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hpo.base import Budget, HPOProblem
from ..hpo.genetic import GeneticAlgorithm
from ..hpo.space import BoolParam, ConfigSpace
from ..learners.neural import MLPClassifier
from ..learners.validation import cross_val_accuracy
from ..metafeatures.extractor import FeatureExtractor
from .concepts import KnowledgeBase

__all__ = ["FeatureSelectionResult", "FeatureSelector"]


@dataclass
class FeatureSelectionResult:
    """Outcome of Algorithm 2: the key features and the search diagnostics."""

    selected: list[str]
    score: float
    all_features_score: float
    n_evaluations: int

    @property
    def n_selected(self) -> int:
        return len(self.selected)


class FeatureSelector:
    """GA-driven selection of the key instance features (``KFs``)."""

    def __init__(
        self,
        candidate_features: list[str] | None = None,
        population_size: int = 50,
        n_generations: int = 100,
        max_evaluations: int | None = 300,
        cv: int = 3,
        mlp_max_iter: int = 60,
        random_state: int | None = 0,
    ) -> None:
        self.extractor = FeatureExtractor(candidate_features)
        self.population_size = population_size
        self.n_generations = n_generations
        self.max_evaluations = max_evaluations
        self.cv = cv
        self.mlp_max_iter = mlp_max_iter
        self.random_state = random_state

    # -- objective --------------------------------------------------------------------
    def _subset_score(
        self, mask: list[bool], features: np.ndarray, labels: np.ndarray
    ) -> float:
        """CV accuracy of the default MLP on the selected feature columns."""
        columns = np.flatnonzero(mask)
        if columns.size == 0:
            return 0.0
        model = MLPClassifier(
            hidden_layer=1,
            hidden_layer_size=32,
            max_iter=self.mlp_max_iter,
            random_state=self.random_state,
        )
        return cross_val_accuracy(
            model, features[:, columns], labels, cv=self.cv, random_state=self.random_state
        )

    # -- Algorithm 2 -------------------------------------------------------------------
    def select(self, knowledge: KnowledgeBase) -> FeatureSelectionResult:
        """Run Algorithm 2 over a knowledge base and return the key features."""
        if len(knowledge) < 4:
            raise ValueError(
                f"knowledge base has only {len(knowledge)} pairs; "
                "feature selection needs at least 4"
            )
        self.extractor.fit(knowledge.datasets)
        features = self.extractor.transform_many(knowledge.datasets)
        labels = knowledge.label_indices()
        names = self.extractor.feature_names

        space = ConfigSpace([BoolParam(name) for name in names])

        def objective(config: dict) -> float:
            mask = [bool(config[name]) for name in names]
            return self._subset_score(mask, features, labels)

        problem = HPOProblem(space, objective, name="feature-selection")
        optimizer = GeneticAlgorithm(
            population_size=self.population_size,
            n_generations=self.n_generations,
            random_state=self.random_state,
        )
        budget = Budget(max_evaluations=self.max_evaluations)
        result = optimizer.optimize(problem, budget)

        selected = [name for name in names if result.best_config.get(name)]
        if not selected:
            # Degenerate search outcome: fall back to all candidate features.
            selected = list(names)
        all_features_score = self._subset_score([True] * len(names), features, labels)
        return FeatureSelectionResult(
            selected=selected,
            score=float(result.best_score),
            all_features_score=float(all_features_score),
            n_evaluations=result.n_evaluations,
        )
