"""Core concepts of Auto-Model: knowledge pairs and the knowledge base.

Section III-A defines *knowledge* as the set of pairs ``(I, OA_I)`` — a task
instance together with the algorithm judged best for it.  The instance appears
in two forms throughout the pipeline: as a *name* (what research-paper
experiences refer to) and as an actual :class:`~repro.datasets.dataset.Dataset`
(what feature extraction needs).  :class:`KnowledgePair` keeps the name-level
pair; :class:`KnowledgeBase` resolves names to datasets and is the training
collection consumed by feature selection and model training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..datasets.dataset import Dataset

__all__ = ["KnowledgePair", "KnowledgeBase"]


@dataclass(frozen=True)
class KnowledgePair:
    """One piece of knowledge ``(I, OA_I)`` plus provenance for auditability."""

    instance: str
    algorithm: str
    # Number of algorithms the winner was shown to beat (the "comparison
    # experience" used to break ties in Algorithm 1) — useful for reporting.
    evidence: int = 0
    candidates: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.instance or not self.algorithm:
            raise ValueError("instance and algorithm must be non-empty")


class KnowledgeBase:
    """The resolved knowledge collection ``CRelations`` = {(dataset, algorithm)}."""

    def __init__(self, pairs: list[tuple[Dataset, str]] | None = None) -> None:
        self._datasets: list[Dataset] = []
        self._algorithms: list[str] = []
        for dataset, algorithm in pairs or []:
            self.add(dataset, algorithm)

    # -- construction -------------------------------------------------------------------
    def add(self, dataset: Dataset, algorithm: str) -> None:
        if not algorithm:
            raise ValueError("algorithm must be non-empty")
        self._datasets.append(dataset)
        self._algorithms.append(algorithm)

    @classmethod
    def from_pairs(
        cls, pairs: list[KnowledgePair], dataset_lookup: dict[str, Dataset]
    ) -> "KnowledgeBase":
        """Resolve name-level pairs against a dataset lookup table.

        Pairs whose instance name has no corresponding dataset are skipped —
        the corpus may mention datasets we do not have locally.
        """
        base = cls()
        for pair in pairs:
            dataset = dataset_lookup.get(pair.instance)
            if dataset is not None:
                base.add(dataset, pair.algorithm)
        return base

    # -- access ---------------------------------------------------------------------------
    @property
    def datasets(self) -> list[Dataset]:
        return list(self._datasets)

    @property
    def algorithms(self) -> list[str]:
        return list(self._algorithms)

    @property
    def algorithm_labels(self) -> list[str]:
        """Distinct algorithm names, sorted (the label vocabulary of the SNA model)."""
        return sorted(set(self._algorithms))

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[tuple[Dataset, str]]:
        return iter(zip(self._datasets, self._algorithms))

    def label_indices(self) -> np.ndarray:
        """Algorithm labels encoded as indices into :attr:`algorithm_labels`."""
        vocabulary = {name: i for i, name in enumerate(self.algorithm_labels)}
        return np.array([vocabulary[a] for a in self._algorithms], dtype=np.int64)

    def class_distribution(self) -> dict[str, int]:
        """How many knowledge pairs point at each algorithm."""
        out: dict[str, int] = {}
        for algorithm in self._algorithms:
            out[algorithm] = out.get(algorithm, 0) + 1
        return out

    def __repr__(self) -> str:
        return (
            f"KnowledgeBase(pairs={len(self)}, "
            f"algorithms={len(self.algorithm_labels)})"
        )
