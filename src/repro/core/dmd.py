"""Decision-Making Model Designer — Algorithm 4 (``AutoModelDMD``).

DMD chains the three offline steps:

1. Knowledge acquisition (Algorithm 1) over the research-paper corpus.
2. Instance-feature selection (Algorithm 2) over the resulting knowledge base.
3. Architecture search + final training of the decision model (Algorithm 3),
   producing the ``SNA`` used online by the UDR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus.experience import ExperienceSet
from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..metafeatures.features import FEATURE_NAMES
from .architecture_search import ArchitectureSearch, ArchitectureSearchResult, DecisionModel
from .concepts import KnowledgeBase, KnowledgePair
from .feature_selection import FeatureSelectionResult, FeatureSelector
from .knowledge import KnowledgeAcquisition

__all__ = ["DMDResult", "DecisionMakingModelDesigner"]


@dataclass
class DMDResult:
    """Everything Algorithm 4 produces, kept for inspection and evaluation."""

    knowledge_pairs: list[KnowledgePair]
    knowledge_base: KnowledgeBase
    feature_selection: FeatureSelectionResult
    architecture: ArchitectureSearchResult
    model: DecisionModel
    diagnostics: dict = field(default_factory=dict)

    @property
    def key_features(self) -> list[str]:
        return self.feature_selection.selected


class DecisionMakingModelDesigner:
    """The DMD component of Auto-Model.

    Parameters mirror the paper's defaults but expose the search budgets so the
    full pipeline stays tractable in tests (GA group size 50 and 100 epochs are
    the published values; ``precision=-0.0015`` is the published stop threshold
    for architecture search).
    """

    def __init__(
        self,
        candidate_features: list[str] | None = None,
        min_algorithms: int = 5,
        precision: float = -0.0015,
        feature_population: int = 50,
        feature_generations: int = 100,
        feature_max_evaluations: int | None = 200,
        architecture_population: int = 50,
        architecture_generations: int = 20,
        architecture_max_evaluations: int | None = 80,
        cv: int = 3,
        random_state: int | None = 0,
        skip_feature_selection: bool = False,
        task: str | None = None,
    ) -> None:
        self.candidate_features = list(candidate_features or FEATURE_NAMES)
        self.min_algorithms = min_algorithms
        self.precision = precision
        self.feature_population = feature_population
        self.feature_generations = feature_generations
        self.feature_max_evaluations = feature_max_evaluations
        self.architecture_population = architecture_population
        self.architecture_generations = architecture_generations
        self.architecture_max_evaluations = architecture_max_evaluations
        self.cv = cv
        self.random_state = random_state
        self.skip_feature_selection = skip_feature_selection
        # The DMD pipeline itself is task-agnostic (it sees meta-features and
        # algorithm names, never scores); an explicit task only guards against
        # accidentally mixing task types in one knowledge base.
        self.task = None if task is None else resolve_task(task).value

    # -- step 1: knowledge -----------------------------------------------------------------
    def acquire_knowledge(self, corpus: ExperienceSet) -> list[KnowledgePair]:
        acquisition = KnowledgeAcquisition(min_algorithms=self.min_algorithms)
        return acquisition.run(corpus)

    # -- step 2: feature selection --------------------------------------------------------------
    def select_features(self, knowledge: KnowledgeBase) -> FeatureSelectionResult:
        if self.skip_feature_selection:
            return FeatureSelectionResult(
                selected=list(self.candidate_features),
                score=float("nan"),
                all_features_score=float("nan"),
                n_evaluations=0,
            )
        selector = FeatureSelector(
            candidate_features=self.candidate_features,
            population_size=self.feature_population,
            n_generations=self.feature_generations,
            max_evaluations=self.feature_max_evaluations,
            cv=self.cv,
            random_state=self.random_state,
        )
        return selector.select(knowledge)

    # -- step 3: architecture search + training ----------------------------------------------------
    def build_model(
        self, knowledge: KnowledgeBase, key_features: list[str]
    ) -> tuple[ArchitectureSearchResult, DecisionModel]:
        from ..metafeatures.extractor import FeatureExtractor

        extractor = FeatureExtractor(key_features).fit(knowledge.datasets)
        search = ArchitectureSearch(
            precision=self.precision,
            population_size=self.architecture_population,
            n_generations=self.architecture_generations,
            max_evaluations=self.architecture_max_evaluations,
            cv=self.cv,
            random_state=self.random_state,
        )
        architecture = search.search(knowledge, extractor)
        model = search.train_decision_model(knowledge, extractor, architecture.config)
        return architecture, model

    # -- Algorithm 4 ------------------------------------------------------------------------------------
    def run(
        self,
        corpus: ExperienceSet,
        dataset_lookup: dict[str, Dataset],
    ) -> DMDResult:
        """Run the full DMD pipeline.

        ``dataset_lookup`` maps instance names (as they appear in the corpus)
        to actual datasets so that instance features can be computed; corpus
        instances without a local dataset are dropped from the knowledge base.
        """
        pairs = self.acquire_knowledge(corpus)
        knowledge = KnowledgeBase.from_pairs(pairs, dataset_lookup)
        if self.task is not None:
            mismatched = [
                d.name for d in knowledge.datasets
                if getattr(d.task, "value", d.task) != self.task
            ]
            if mismatched:
                raise ValueError(
                    f"knowledge datasets {mismatched} do not carry task={self.task!r}"
                )
        if len(knowledge) < 4:
            raise ValueError(
                f"only {len(knowledge)} knowledge pairs could be resolved to datasets; "
                "the decision model needs at least 4"
            )
        feature_selection = self.select_features(knowledge)
        architecture, model = self.build_model(knowledge, feature_selection.selected)
        # Training-set agreement of the fitted SNA, computed with the batched
        # inference path (one forward pass over the whole knowledge base).
        selections = model.select_many(knowledge.datasets)
        matches = sum(
            selected == algorithm
            for selected, (_, algorithm) in zip(selections, knowledge)
        )
        return DMDResult(
            knowledge_pairs=pairs,
            knowledge_base=knowledge,
            feature_selection=feature_selection,
            architecture=architecture,
            model=model,
            diagnostics={
                "n_corpus_instances": len(corpus.instances()),
                "n_knowledge_pairs": len(pairs),
                "n_resolved_pairs": len(knowledge),
                "n_algorithms_in_knowledge": len(knowledge.algorithm_labels),
                "training_selection_agreement": round(matches / len(knowledge), 4),
            },
        )
