"""Decision-model architecture search (Algorithm 3) and the SNA model.

Algorithm 3 searches the ten MLP hyperparameters of Table II with a GA.  The
training data are ``(KFs(I_i), OneHot'(OA_{I_i}))`` pairs, the model is an MLP
*regressor*, and the quality of an architecture is its k-fold cross-validation
mean squared error (the GA stops as soon as an architecture reaches the
``Precision`` threshold, -0.0015 in the paper — scores are negated MSE so the
problem stays a maximisation).

``OneHot'`` (footnote 1 of the paper) is a one-hot encoding of the winning
algorithm where the positions of algorithms that *cannot handle* the instance
are set to -1; at prediction time the algorithm with the largest regressed
output is selected, so inapplicable algorithms are actively pushed away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..obs.profiler import profiled
from ..datasets.dataset import Dataset
from ..hpo.base import Budget, HPOProblem
from ..hpo.genetic import GeneticAlgorithm
from ..hpo.space import CategoricalParam, ConfigSpace, Condition, FloatParam, IntParam
from ..learners.neural import MLPRegressor
from ..learners.validation import KFold
from ..metafeatures.extractor import FeatureExtractor
from .concepts import KnowledgeBase

__all__ = [
    "mlp_architecture_space",
    "one_hot_prime",
    "ArchitectureSearchResult",
    "ArchitectureSearch",
    "DecisionModel",
]


def mlp_architecture_space(max_hidden_layers: int = 20, max_layer_size: int = 100) -> ConfigSpace:
    """The Table II search space (ten hyperparameters, with SGD-only conditionals)."""
    space = ConfigSpace(
        [
            IntParam("hidden_layer", 1, max_hidden_layers),
            IntParam("hidden_layer_size", 5, max_layer_size),
            CategoricalParam("activation", ["relu", "tanh", "logistic", "identity"]),
            CategoricalParam("solver", ["lbfgs", "sgd", "adam"]),
            CategoricalParam("learning_rate", ["constant", "invscaling", "adaptive"]),
            IntParam("max_iter", 100, 500),
            FloatParam("momentum", 0.01, 0.99),
            FloatParam("validation_fraction", 0.01, 0.99),
            FloatParam("beta_1", 0.01, 0.99),
            FloatParam("beta_2", 0.01, 0.99),
        ]
    )
    # Table II: learning_rate and momentum are only used when solver is 'sgd';
    # beta_1/beta_2 are the Adam decay rates.
    space.add_condition("learning_rate", Condition("solver", ("sgd",)))
    space.add_condition("momentum", Condition("solver", ("sgd",)))
    space.add_condition("beta_1", Condition("solver", ("adam",)))
    space.add_condition("beta_2", Condition("solver", ("adam",)))
    return space


def one_hot_prime(
    algorithm: str,
    labels: list[str],
    dataset: Dataset | None = None,
    applicability: Callable[[str, Dataset], bool] | None = None,
) -> np.ndarray:
    """The paper's ``OneHot'`` target encoding.

    The winning algorithm's position is 1, all others 0, except that positions
    of algorithms deemed unable to process the instance are set to -1.
    """
    if algorithm not in labels:
        raise ValueError(f"algorithm {algorithm!r} not in label vocabulary")
    target = np.zeros(len(labels), dtype=np.float64)
    target[labels.index(algorithm)] = 1.0
    if applicability is not None and dataset is not None:
        for position, name in enumerate(labels):
            if name != algorithm and not applicability(name, dataset):
                target[position] = -1.0
    return target


@dataclass
class ArchitectureSearchResult:
    """Outcome of Algorithm 3: the chosen architecture and search diagnostics."""

    config: dict
    mse: float
    n_evaluations: int
    reached_precision: bool


class ArchitectureSearch:
    """GA search over the Table II space, scored by CV mean squared error."""

    def __init__(
        self,
        precision: float = -0.0015,
        population_size: int = 50,
        n_generations: int = 20,
        max_evaluations: int | None = 120,
        cv: int = 3,
        max_hidden_layers: int = 20,
        max_layer_size: int = 100,
        max_iter_cap: int | None = 200,
        random_state: int | None = 0,
        applicability: Callable[[str, Dataset], bool] | None = None,
    ) -> None:
        self.precision = precision
        self.population_size = population_size
        self.n_generations = n_generations
        self.max_evaluations = max_evaluations
        self.cv = cv
        self.space = mlp_architecture_space(max_hidden_layers, max_layer_size)
        self.max_iter_cap = max_iter_cap
        self.random_state = random_state
        self.applicability = applicability

    # -- data preparation ---------------------------------------------------------------
    def _targets(self, knowledge: KnowledgeBase, labels: list[str]) -> np.ndarray:
        return np.vstack(
            [
                one_hot_prime(algorithm, labels, dataset, self.applicability)
                for dataset, algorithm in knowledge
            ]
        )

    def _build_regressor(self, config: dict) -> MLPRegressor:
        max_iter = int(config["max_iter"])
        if self.max_iter_cap is not None:
            max_iter = min(max_iter, self.max_iter_cap)
        return MLPRegressor(
            hidden_layer=int(config["hidden_layer"]),
            hidden_layer_size=int(config["hidden_layer_size"]),
            activation=config["activation"],
            solver=config["solver"],
            learning_rate=config["learning_rate"],
            max_iter=max_iter,
            momentum=float(config["momentum"]),
            validation_fraction=float(config["validation_fraction"]),
            beta_1=float(config["beta_1"]),
            beta_2=float(config["beta_2"]),
            random_state=self.random_state,
        )

    def _cv_neg_mse(self, config: dict, X: np.ndarray, Y: np.ndarray) -> float:
        """Negative CV mean squared error (maximised by the GA)."""
        splitter = KFold(
            n_splits=max(2, min(self.cv, X.shape[0] // 2)),
            shuffle=True,
            random_state=self.random_state,
        )
        errors: list[float] = []
        for train_idx, test_idx in splitter.split(X):
            model = self._build_regressor(config)
            try:
                model.fit(X[train_idx], Y[train_idx])
                predictions = model.predict(X[test_idx])
                predictions = predictions.reshape(len(test_idx), -1)
                errors.append(float(np.mean((predictions - Y[test_idx]) ** 2)))
            except Exception as exc:  # noqa: BLE001 — a failed fold scores worst
                obs.error_event("architecture.cv_fold", exc)
                errors.append(float("inf"))
        mse = float(np.mean(errors)) if errors else float("inf")
        return -mse

    # -- Algorithm 3 ------------------------------------------------------------------------
    def search(
        self, knowledge: KnowledgeBase, extractor: FeatureExtractor
    ) -> ArchitectureSearchResult:
        """Search for a suitable architecture on ``(KFs(I), OneHot'(OA_I))`` data."""
        if len(knowledge) < 4:
            raise ValueError("architecture search needs at least 4 knowledge pairs")
        labels = knowledge.algorithm_labels
        X = extractor.transform_many(knowledge.datasets)
        Y = self._targets(knowledge, labels)

        def objective(config: dict) -> float:
            return self._cv_neg_mse(config, X, Y)

        problem = HPOProblem(self.space, objective, name="architecture-search")
        optimizer = GeneticAlgorithm(
            population_size=self.population_size,
            n_generations=self.n_generations,
            target_score=self.precision,
            random_state=self.random_state,
        )
        budget = Budget(max_evaluations=self.max_evaluations)
        result = optimizer.optimize(problem, budget)
        best_config = result.best_config
        best_score = result.best_score if np.isfinite(result.best_score) else float("-inf")
        return ArchitectureSearchResult(
            config=best_config,
            mse=float(-best_score) if np.isfinite(best_score) else float("inf"),
            n_evaluations=result.n_evaluations,
            reached_precision=bool(best_score >= self.precision),
        )

    # -- final model ---------------------------------------------------------------------------
    def train_decision_model(
        self,
        knowledge: KnowledgeBase,
        extractor: FeatureExtractor,
        config: dict,
    ) -> "DecisionModel":
        """Train the final SNA regressor on all knowledge pairs (Algorithm 4, line 5)."""
        labels = knowledge.algorithm_labels
        X = extractor.transform_many(knowledge.datasets)
        Y = self._targets(knowledge, labels)
        model = self._build_regressor(config)
        model.fit(X, Y)
        return DecisionModel(
            regressor=model,
            labels=labels,
            extractor=extractor,
            architecture=dict(config),
        )


@dataclass
class DecisionModel:
    """The trained decision-making model ``SNA``.

    Maps a task instance to the predicted best algorithm by regressing the
    OneHot' target and taking the argmax over the label vocabulary.
    """

    regressor: MLPRegressor
    labels: list[str]
    extractor: FeatureExtractor
    architecture: dict

    def scores(self, dataset: Dataset) -> dict[str, float]:
        """Per-algorithm regression scores for a dataset."""
        return self.scores_many([dataset])[0]

    def scores_matrix(self, datasets: list[Dataset]) -> np.ndarray:
        """``(n_datasets, n_labels)`` regression scores in one forward pass.

        This is the micro-batched inference path of the serving subsystem: N
        queued requests become one feature matrix and one regressor forward
        pass instead of N scalar calls.
        """
        if not datasets:
            return np.zeros((0, len(self.labels)), dtype=np.float64)
        with profiled("scores_matrix"):
            matrix = self.extractor.transform_many(datasets)
            return np.asarray(self.regressor.predict(matrix)).reshape(len(datasets), -1)

    def scores_many(self, datasets: list[Dataset]) -> list[dict[str, float]]:
        """Per-algorithm score dicts for a batch of datasets (one forward pass)."""
        output = self.scores_matrix(datasets)
        return [
            {label: float(score) for label, score in zip(self.labels, row)}
            for row in output
        ]

    def select(self, dataset: Dataset) -> str:
        """``SNA(KFs(I))``: the recommended algorithm for a task instance."""
        scores = self.scores(dataset)
        return max(scores, key=scores.get)

    def select_many(self, datasets: list[Dataset]) -> list[str]:
        """Batched :meth:`select` (one forward pass for the whole batch)."""
        return [max(scores, key=scores.get) for scores in self.scores_many(datasets)]

    def rank(self, dataset: Dataset) -> list[str]:
        """All algorithms ordered from most to least recommended."""
        scores = self.scores(dataset)
        return sorted(scores, key=scores.get, reverse=True)

    def rank_many(self, datasets: list[Dataset]) -> list[list[str]]:
        """Batched :meth:`rank` (one forward pass for the whole batch)."""
        return [
            sorted(scores, key=scores.get, reverse=True)
            for scores in self.scores_many(datasets)
        ]

    @property
    def key_features(self) -> list[str]:
        return list(self.extractor.feature_names)
