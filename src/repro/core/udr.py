"""User Demand Responser — Algorithm 5 (``AutoModelUDR``).

Given a user task instance, the UDR

1. asks the trained decision model ``SNA`` for the suitable algorithm ``SA``
   (pruning the CASH search space to a single algorithm),
2. builds one :class:`~repro.execution.engine.EvaluationEngine` for
   ``(SA, I)`` — precomputed CV folds, score cache, optional parallel
   workers — that every subsequent evaluation runs through,
3. picks GA or BO according to the cost of a single configuration evaluation
   on a small sample (the paper's 10-minute rule); the probes are charged
   against the user's budget and their results seed the engine cache, and
4. optimises under the user's time/evaluation budget, returning the selected
   algorithm with the best hyperparameter setting found so far.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..execution import (
    EvaluationEngine,
    ResultStore,
    estimator_engine,
    objective_context_suffix,
)
from ..hpo.base import Budget, HPOProblem, OptimizationResult
from ..hpo.selector import HPOTechniqueSelector
from ..learners.base import BaseClassifier
from ..learners.metrics import resolve_scorer
from ..learners.pipeline import pipeline_context_suffix, training_matrix
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task
from .architecture_search import DecisionModel

__all__ = ["CASHSolution", "UserDemandResponser", "first_supported_algorithm"]


def first_supported_algorithm(ranking: list[str], registry: AlgorithmRegistry) -> str:
    """The best-ranked algorithm the catalogue can actually build.

    Shared selection policy of the UDR and the serving dispatcher — change it
    here and both the in-process and the HTTP paths follow.
    """
    for algorithm in ranking:
        if algorithm in registry:
            return algorithm
    raise RuntimeError(
        "the decision model only recommends algorithms outside the catalogue; "
        "notify the user to implement the recommended algorithm "
        f"({ranking[0]!r})"
    )


@dataclass
class CASHSolution:
    """The solution Auto-Model hands back to the user: ``(SA, OHS)`` plus context."""

    algorithm: str
    config: dict[str, Any]
    cv_score: float
    optimizer: str
    n_evaluations: int
    elapsed: float
    estimator: BaseClassifier | None = None
    history: OptimizationResult | None = field(default=None, repr=False)
    engine_stats: dict = field(default_factory=dict)

    def summary(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "config": self.config,
            "cv_score": round(self.cv_score, 4),
            "optimizer": self.optimizer,
            "n_evaluations": self.n_evaluations,
            "elapsed_seconds": round(self.elapsed, 3),
        }
        if self.engine_stats:
            out["cache_hit_rate"] = self.engine_stats.get("cache_hit_rate")
            out["evals_per_second"] = self.engine_stats.get("evals_per_second")
        return out


class UserDemandResponser:
    """The online half of Auto-Model.

    ``n_workers``/``backend`` configure the evaluation engine: with more than
    one worker the GA populations and BO initial designs of the tuning step
    are evaluated concurrently (deterministic trajectories either way).

    With a ``store`` (a :class:`~repro.execution.ResultStore`), every tuning
    evaluation is persisted and, when ``warm_start`` is on, repeat requests
    for the same (algorithm, dataset, CV protocol) replay prior scores from
    disk instead of re-running cross-validation; ``warm_start_top_k`` prior
    bests additionally seed the GA population / BO initial design (re-ranked
    before fresh sampling).
    """

    def __init__(
        self,
        model: DecisionModel,
        registry: AlgorithmRegistry | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        probe_time_threshold: float = 2.0,
        random_state: int | None = 0,
        n_workers: int = 1,
        backend: str = "thread",
        store: ResultStore | None = None,
        warm_start: bool = True,
        warm_start_top_k: int = 3,
        task: str = "classification",
        metric: str | None = None,
    ) -> None:
        self.task = resolve_task(task).value
        self.metric = metric
        self.model = model
        self.registry = registry if registry is not None else registry_for_task(self.task)
        self.cv = cv
        self.tuning_max_records = tuning_max_records
        self.probe_time_threshold = probe_time_threshold
        self.random_state = random_state
        self.n_workers = n_workers
        self.backend = backend
        self.store = store
        self.warm_start = warm_start
        self.warm_start_top_k = int(warm_start_top_k)

    # -- algorithm selection (Algorithm 5, line 1) --------------------------------------------
    def select_algorithm(self, dataset: Dataset) -> str:
        """``SA = SNA(KFs(I))``, constrained to algorithms present in the catalogue."""
        return first_supported_algorithm(self.model.rank(dataset), self.registry)

    def select_algorithms(self, datasets: list[Dataset]) -> list[str]:
        """Batched :meth:`select_algorithm`: one decision-model forward pass."""
        return [
            first_supported_algorithm(ranking, self.registry)
            for ranking in self.model.rank_many(datasets)
        ]

    # -- hyperparameter optimisation (lines 2-4) ------------------------------------------------
    def _store_context(self, dataset: Dataset, algorithm: str) -> str:
        """Shard key fingerprinting the tuning objective.

        Everything that changes ``f(λ, SA, I)`` is folded in — dataset
        identity/shape, the subsample cap, the CV protocol and the seed — so
        a persistent store never replays scores across distinct objectives.
        Pipeline catalogues additionally append their step structure
        (:func:`~repro.learners.pipeline.pipeline_context_suffix`): the same
        algorithm name means a different objective when it denotes a
        pipeline, while bare-estimator shard keys stay byte-identical.
        """
        return (
            f"udr-{algorithm}-{dataset.name}-{dataset.n_records}x{dataset.n_attributes}"
            f"-sub{self.tuning_max_records}-cv{self.cv}-rs{self.random_state}"
            f"{pipeline_context_suffix(self.registry.get(algorithm))}"
        )

    def store_context(self, dataset: Dataset, algorithm: str) -> str:
        """The full store shard key tuning evaluations land under.

        Includes the objective suffix :func:`estimator_engine` appends for
        non-default task/metric combinations, so callers (e.g. the serving
        dispatcher looking up previously tuned configurations) read exactly
        the shard :meth:`respond` writes.
        """
        return self._store_context(dataset, algorithm) + objective_context_suffix(
            self.task, self.metric
        )

    def tuned_best(self, dataset: Dataset, algorithm: str, k: int = 1) -> list[tuple[dict[str, Any], float]]:
        """Best previously tuned ``(config, score)`` pairs from the store.

        Empty when no store is attached or nothing was tuned yet; this is how
        async refine jobs make their results servable — the dispatcher
        consults it instead of falling back to default configurations.
        """
        if self.store is None:
            return []
        return self.store.top_k(self.store_context(dataset, algorithm), k=k)

    def _make_engine(self, dataset: Dataset, algorithm: str):
        """One shared engine per (algorithm, dataset): folds, cache, workers, store."""
        spec = self.registry.get(algorithm)
        data = (
            dataset.subsample(self.tuning_max_records, random_state=self.random_state)
            if self.tuning_max_records
            else dataset
        )
        # Pipelines tune on the raw attribute blocks (their own steps impute
        # and encode per fold); bare estimators keep the encoded matrix.
        X, y = training_matrix(data, spec)
        # estimator_engine folds the task/metric identity into the store
        # context when it differs from the classification-accuracy default,
        # so classification shard names stay byte-identical to prior releases.
        engine = estimator_engine(
            spec.build,
            X,
            y,
            cv=self.cv,
            random_state=self.random_state,
            n_workers=self.n_workers,
            backend=self.backend,
            name=f"udr-{algorithm}-{dataset.name}",
            store=self.store,
            store_context=self._store_context(dataset, algorithm),
            warm_start=self.warm_start,
            task=self.task,
            metric=self.metric,
        )
        return spec, engine

    def optimize_hyperparameters(
        self,
        dataset: Dataset,
        algorithm: str,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        engine: EvaluationEngine | None = None,
    ) -> tuple[dict[str, Any], OptimizationResult, str]:
        """Tune ``algorithm`` on ``dataset``; returns (best config, history, optimizer name)."""
        if engine is None:
            spec, engine = self._make_engine(dataset, algorithm)
        else:
            spec = self.registry.get(algorithm)
        budget = Budget(max_evaluations=max_evaluations, time_limit=time_limit)
        budget.start()
        # Warm-start seeding only kicks in when the engine actually reads its
        # store (a store attached with warm_start=False is record-only), so
        # trajectories without warm starts stay bit-identical to earlier
        # releases.
        warm_k = self.warm_start_top_k if engine.warm_start else 0
        selector = HPOTechniqueSelector(
            time_threshold=self.probe_time_threshold,
            random_state=self.random_state,
            warm_start=warm_k,
        )
        # Probes run through the engine: charged to the budget, cached for
        # reuse as the optimizer's default-configuration anchor trial.
        optimizer = selector.select(spec.space, engine=engine, budget=budget)
        problem = HPOProblem(
            spec.space, name=f"udr-{algorithm}-{dataset.name}", engine=engine
        )
        result = optimizer.optimize(problem, budget)
        config = (
            result.best_config if np.isfinite(result.best_score) else spec.default_config()
        )
        return config, result, optimizer.name

    # -- Algorithm 5 -----------------------------------------------------------------------------------
    def respond(
        self,
        dataset: Dataset,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        fit_final_estimator: bool = True,
        algorithm: str | None = None,
    ) -> CASHSolution:
        """Full UDR run: select an algorithm, tune it, and return the solution.

        ``algorithm`` preselects the algorithm (skipping the decision-model
        forward pass), which is how :meth:`respond_many` amortises selection
        over a batch; it must be a catalogue member.
        """
        start = time.monotonic()
        if algorithm is None:
            algorithm = self.select_algorithm(dataset)
        elif algorithm not in self.registry:
            raise KeyError(f"preselected algorithm {algorithm!r} not in the catalogue")
        config, history, optimizer_name = self.optimize_hyperparameters(
            dataset, algorithm, time_limit=time_limit, max_evaluations=max_evaluations
        )
        estimator: BaseClassifier | None = None
        if fit_final_estimator:
            X, y = training_matrix(dataset, self.registry.get(algorithm))
            estimator = self.registry.build(algorithm, config)
            try:
                estimator.fit(X, y)
            except Exception as exc:  # noqa: BLE001 — a failed refit returns no estimator
                obs.error_event("udr.final_fit", exc)
                estimator = None
        if np.isfinite(history.best_score):
            cv_score = history.best_score
        else:
            error = resolve_scorer(self.metric, self.task).error_score
            cv_score = error if np.isfinite(error) else 0.0
        return CASHSolution(
            algorithm=algorithm,
            config=config,
            cv_score=float(cv_score),
            optimizer=optimizer_name,
            n_evaluations=history.n_evaluations,
            elapsed=time.monotonic() - start,
            estimator=estimator,
            history=history,
            engine_stats=history.engine_stats,
        )

    def respond_many(
        self,
        datasets: list[Dataset],
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        fit_final_estimator: bool = True,
    ) -> list[CASHSolution]:
        """Answer a batch of CASH queries.

        Algorithm selection is vectorized into a single decision-model
        forward pass (:meth:`select_algorithms`); tuning still runs
        per-dataset, each under its own ``time_limit``/``max_evaluations``.
        """
        algorithms = self.select_algorithms(datasets)
        return [
            self.respond(
                dataset,
                time_limit=time_limit,
                max_evaluations=max_evaluations,
                fit_final_estimator=fit_final_estimator,
                algorithm=algorithm,
            )
            for dataset, algorithm in zip(datasets, algorithms)
        ]
