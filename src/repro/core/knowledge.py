"""Knowledge acquisition from research-paper experiences (Algorithm 1).

Given ``InfAll`` (all experiences) the algorithm derives, per task instance
``I``:

1. ``RInf_I`` — the experiences about ``I``; instances mentioned by too few
   algorithms are skipped (insufficient evidence).
2. ``OACs`` — the candidate optimal algorithms (every ``BestA`` in ``RInf_I``).
3. Direct performance relations ``Ai -> Aj`` weighted by the reliability rank
   of the most reliable paper asserting them.
4. The transitive closure of those relations via BFS, where a derived edge's
   weight is the minimum weight along its path.
5. Conflict resolution: when both ``Ai -> Aj`` and ``Aj -> Ai`` exist, only the
   higher-weight edge (more reliable evidence) survives.
6. The winner: among candidates with in-degree 0, the one with the richest
   comparison experience (most algorithms transitively proven worse).

The output is the paper's ``CRelations``: one :class:`KnowledgePair` per
retained instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..corpus.experience import Experience, ExperienceSet
from ..corpus.paper import reliability_index
from .concepts import KnowledgePair

__all__ = ["KnowledgeAcquisition", "InformationNetwork", "acquire_knowledge"]


@dataclass
class InformationNetwork:
    """The per-instance directed graph ``DGraph`` plus intermediate artefacts.

    Exposed mainly for inspection, testing and the knowledge-ablation bench:
    ``direct`` holds the graph before BFS closure and conflict resolution,
    ``resolved`` the final graph Algorithm 1 reasons over.
    """

    instance: str
    candidates: list[str]
    direct: nx.DiGraph
    resolved: nx.DiGraph
    comparison_experience: dict[str, int] = field(default_factory=dict)

    def sources(self) -> list[str]:
        """Candidate algorithms with in-degree 0 in the resolved graph."""
        return [
            node
            for node in self.resolved.nodes
            if self.resolved.in_degree(node) == 0
        ]


class KnowledgeAcquisition:
    """Implementation of Algorithm 1 (``KnowledgeAcquisition``).

    Parameters
    ----------
    min_algorithms:
        Minimum number of distinct algorithms that must appear in ``RInf_I``
        for the instance to be retained (the paper uses "> 5 algorithms").
    use_bfs_closure:
        Derive transitive relations by BFS (step 10-11).  Disabling this is the
        "no closure" ablation.
    resolve_conflicts:
        Keep only the higher-weight edge of a contradictory pair (step 12).
        Disabling this is the "no conflict resolution" ablation, in which the
        first-inserted edge of a conflicting pair survives.
    """

    def __init__(
        self,
        min_algorithms: int = 5,
        use_bfs_closure: bool = True,
        resolve_conflicts: bool = True,
    ) -> None:
        if min_algorithms < 1:
            raise ValueError("min_algorithms must be >= 1")
        self.min_algorithms = min_algorithms
        self.use_bfs_closure = use_bfs_closure
        self.resolve_conflicts = resolve_conflicts

    # -- graph construction ---------------------------------------------------------------
    def _direct_relations(
        self,
        related: list[Experience],
        candidates: set[str],
        paper_rank: dict[str, int],
    ) -> dict[tuple[str, str], int]:
        """Direct edges (Ai, Aj) -> weight, from the raw experiences (step 8)."""
        relations: dict[tuple[str, str], int] = {}
        for experience in related:
            winner = experience.best_algorithm
            weight = paper_rank.get(experience.paper_id, 0)
            for loser in experience.other_algorithms:
                if loser not in candidates or loser == winner:
                    continue
                key = (winner, loser)
                if key not in relations or weight > relations[key]:
                    relations[key] = weight
        return relations

    @staticmethod
    def _build_graph(relations: dict[tuple[str, str], int], candidates: set[str]) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(candidates)
        for (winner, loser), weight in relations.items():
            graph.add_edge(winner, loser, weight=weight)
        return graph

    @staticmethod
    def _bfs_closure(graph: nx.DiGraph) -> nx.DiGraph:
        """Add transitive edges; a derived edge's weight is the bottleneck (min)
        weight along the strongest path found by BFS (steps 10-11)."""
        closed = nx.DiGraph()
        closed.add_nodes_from(graph.nodes)
        for source in graph.nodes:
            # Best (maximal) bottleneck weight from source to each reachable node.
            best: dict[str, float] = {source: float("inf")}
            frontier = [source]
            while frontier:
                next_frontier: list[str] = []
                for node in frontier:
                    for _, neighbor, data in graph.out_edges(node, data=True):
                        bottleneck = min(best[node], data["weight"])
                        if bottleneck > best.get(neighbor, float("-inf")):
                            best[neighbor] = bottleneck
                            next_frontier.append(neighbor)
                frontier = next_frontier
            for target, weight in best.items():
                if target != source:
                    closed.add_edge(source, target, weight=weight)
        return closed

    @staticmethod
    def _resolve_conflicts(graph: nx.DiGraph) -> nx.DiGraph:
        """Keep only the higher-weight direction of contradictory edges (step 12)."""
        resolved = nx.DiGraph()
        resolved.add_nodes_from(graph.nodes)
        for u, v, data in graph.edges(data=True):
            if resolved.has_edge(u, v):
                continue
            forward = data["weight"]
            if graph.has_edge(v, u):
                backward = graph[v][u]["weight"]
                if forward > backward:
                    resolved.add_edge(u, v, weight=forward)
                elif backward > forward:
                    resolved.add_edge(v, u, weight=backward)
                else:
                    # Equal reliability: deterministic tie-break on node names so
                    # the result does not depend on iteration order.
                    winner, loser = sorted((u, v))
                    resolved.add_edge(winner, loser, weight=forward)
            else:
                resolved.add_edge(u, v, weight=forward)
        return resolved

    # -- per-instance analysis ----------------------------------------------------------------
    def analyze_instance(
        self,
        instance: str,
        corpus: ExperienceSet,
        paper_rank: dict[str, int] | None = None,
    ) -> InformationNetwork | None:
        """Build the information network of one instance; None if evidence is too thin."""
        paper_rank = paper_rank if paper_rank is not None else reliability_index(corpus.papers)
        related = corpus.related_to(instance)
        mentioned: set[str] = set()
        for experience in related:
            mentioned.update(experience.algorithms)
        if len(mentioned) <= self.min_algorithms:
            return None
        candidates = {experience.best_algorithm for experience in related}
        relations = self._direct_relations(related, candidates, paper_rank)
        direct = self._build_graph(relations, candidates)
        graph = self._bfs_closure(direct) if self.use_bfs_closure else direct.copy()
        resolved = self._resolve_conflicts(graph) if self.resolve_conflicts else graph

        # Comparison experience (step 14): for each candidate, how many distinct
        # algorithms are transitively proven worse via experiences whose winner
        # is reachable from the candidate.
        reachable: dict[str, set[str]] = {}
        for candidate in candidates:
            nodes = {candidate}
            if candidate in resolved:
                nodes |= set(nx.descendants(resolved, candidate))
            reachable[candidate] = nodes
        comparison: dict[str, int] = {}
        for candidate in candidates:
            beaten: set[str] = set()
            for experience in related:
                if experience.best_algorithm in reachable[candidate]:
                    beaten.update(experience.other_algorithms)
            beaten.discard(candidate)
            comparison[candidate] = len(beaten)
        return InformationNetwork(
            instance=instance,
            candidates=sorted(candidates),
            direct=direct,
            resolved=resolved,
            comparison_experience=comparison,
        )

    def select_optimal(self, network: InformationNetwork) -> KnowledgePair:
        """Pick ``OA_I`` from an information network (steps 13-15)."""
        sources = network.sources()
        pool = sources if sources else network.candidates
        # Richest comparison experience wins; ties break deterministically by name.
        best = max(pool, key=lambda a: (network.comparison_experience.get(a, 0), a))
        return KnowledgePair(
            instance=network.instance,
            algorithm=best,
            evidence=network.comparison_experience.get(best, 0),
            candidates=tuple(network.candidates),
        )

    # -- full run ----------------------------------------------------------------------------------
    def run(self, corpus: ExperienceSet) -> list[KnowledgePair]:
        """Execute Algorithm 1 over the whole corpus and return ``CRelations``."""
        paper_rank = reliability_index(corpus.papers)
        pairs: list[KnowledgePair] = []
        for instance in corpus.instances():
            network = self.analyze_instance(instance, corpus, paper_rank)
            if network is None:
                continue
            pairs.append(self.select_optimal(network))
        return pairs


def acquire_knowledge(
    corpus: ExperienceSet, min_algorithms: int = 5
) -> list[KnowledgePair]:
    """Convenience wrapper: run Algorithm 1 with default settings."""
    return KnowledgeAcquisition(min_algorithms=min_algorithms).run(corpus)
