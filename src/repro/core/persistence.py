"""Save / load a trained decision model (``SNA``).

The DMD phase is by far the most expensive part of Auto-Model, so a fitted
decision model is worth persisting: this module serialises the key features,
the normalisation statistics, the label vocabulary, the searched architecture
and the MLP weights into a single JSON file (weights included as nested
lists), and restores a fully functional :class:`DecisionModel`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..learners.neural import MLPNetwork, MLPRegressor
from ..metafeatures.extractor import FeatureExtractor
from .architecture_search import DecisionModel

__all__ = [
    "save_decision_model",
    "load_decision_model",
    "saved_decision_model_task",
    "read_decision_model_manifest",
]

_FORMAT_VERSION = 1


def _extractor_to_dict(extractor: FeatureExtractor) -> dict:
    return {
        "feature_names": list(extractor.feature_names),
        "normalize": extractor.normalize,
        "mean": None if extractor._mean is None else extractor._mean.tolist(),
        "scale": None if extractor._scale is None else extractor._scale.tolist(),
    }


def _extractor_from_dict(payload: dict) -> FeatureExtractor:
    extractor = FeatureExtractor(payload["feature_names"], normalize=payload["normalize"])
    if payload.get("mean") is not None:
        extractor._mean = np.asarray(payload["mean"], dtype=np.float64)
        extractor._scale = np.asarray(payload["scale"], dtype=np.float64)
    return extractor


def _regressor_to_dict(regressor: MLPRegressor) -> dict:
    if regressor.network_ is None:
        raise ValueError("cannot persist an unfitted decision model")
    network = regressor.network_
    return {
        "params": regressor.get_params(),
        "n_outputs": regressor.n_outputs_,
        "input_mean": regressor._mean.tolist(),
        "input_scale": regressor._scale.tolist(),
        "layer_sizes": list(network.layer_sizes),
        "weights": [w.tolist() for w in network.weights_],
        "biases": [b.tolist() for b in network.biases_],
    }


def _regressor_from_dict(payload: dict) -> MLPRegressor:
    regressor = MLPRegressor(**payload["params"])
    regressor.n_outputs_ = int(payload["n_outputs"])
    regressor._mean = np.asarray(payload["input_mean"], dtype=np.float64)
    regressor._scale = np.asarray(payload["input_scale"], dtype=np.float64)
    network = MLPNetwork(
        layer_sizes=list(payload["layer_sizes"]),
        task="regression",
        activation=regressor.activation,
        solver=regressor.solver,
        learning_rate=regressor.learning_rate,
        max_iter=regressor.max_iter,
    )
    network.weights_ = [np.asarray(w, dtype=np.float64) for w in payload["weights"]]
    network.biases_ = [np.asarray(b, dtype=np.float64) for b in payload["biases"]]
    regressor.network_ = network
    return regressor


def save_decision_model(
    model: DecisionModel,
    path: str | Path,
    task: str = "classification",
    metadata: dict | None = None,
) -> None:
    """Serialise a fitted :class:`DecisionModel` to a JSON file.

    ``task`` records which catalogue the model's labels belong to, so a
    restore can pick the matching registry (and reject a mismatched one)
    instead of silently pairing regressor labels with the classifier
    catalogue.  ``metadata`` attaches arbitrary JSON-serialisable manifest
    data (the model registry stores its version/provenance here); readers
    that predate it ignore the key.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "task": str(getattr(task, "value", task)),
        "labels": list(model.labels),
        "architecture": dict(model.architecture),
        "extractor": _extractor_to_dict(model.extractor),
        "regressor": _regressor_to_dict(model.regressor),
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    Path(path).write_text(json.dumps(payload))


def read_decision_model_manifest(path: str | Path) -> dict:
    """Cheap manifest of a saved decision model (no weight deserialisation).

    Returns task, label vocabulary, key features, architecture, format
    version and any attached metadata — everything a model registry needs to
    list, route and validate artifacts without paying for a full restore.
    """
    payload = json.loads(Path(path).read_text())
    extractor = payload.get("extractor", {})
    return {
        "format_version": payload.get("format_version"),
        "task": str(payload.get("task", "classification")),
        "labels": list(payload.get("labels", [])),
        "key_features": list(extractor.get("feature_names", [])),
        "architecture": dict(payload.get("architecture", {})),
        "metadata": dict(payload.get("metadata", {})),
    }


def saved_decision_model_task(path: str | Path) -> str:
    """The task type a saved decision model was fitted for.

    Files written before task types existed carry no ``task`` key and are
    classification models by definition.
    """
    return read_decision_model_manifest(path)["task"]


def load_decision_model(path: str | Path) -> DecisionModel:
    """Restore a :class:`DecisionModel` saved by :func:`save_decision_model`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported decision-model format version {version!r}")
    return DecisionModel(
        regressor=_regressor_from_dict(payload["regressor"]),
        labels=list(payload["labels"]),
        extractor=_extractor_from_dict(payload["extractor"]),
        architecture=dict(payload["architecture"]),
    )
