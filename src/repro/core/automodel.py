"""The Auto-Model facade: DMD (offline) + UDR (online) behind one object.

Typical use::

    from repro import AutoModel, datasets

    knowledge_datasets = datasets.knowledge_suite(n_datasets=20)
    auto_model = AutoModel.fit_from_datasets(knowledge_datasets)
    solution = auto_model.recommend(my_dataset, time_limit=30.0)
    print(solution.algorithm, solution.config, solution.cv_score)

``fit_from_datasets`` simulates the research-paper corpus from measured
performance (see :mod:`repro.corpus.generator`); ``fit`` accepts a ready-made
corpus (e.g. one hand-extracted from real papers and loaded with
:func:`repro.corpus.load_corpus`).

Persistent caching
------------------
Passing ``cache_dir`` composes every durable artefact behind one directory:

* ``results/`` — a :class:`~repro.execution.ResultStore` that persists raw
  configuration scores (performance-table cells, UDR tuning evaluations), so
  interrupted or repeated runs resume instead of recomputing;
* ``decision_model.json`` — the trained ``SNA`` via
  :mod:`repro.core.persistence`;
* ``performance_table.json`` / ``corpus.json`` — the measured table and the
  simulated corpus it fed.

``AutoModel.fit_from_datasets(..., cache_dir=path)`` is therefore a one-call
warm-startable workflow: the first invocation measures, fits and saves; any
later invocation (even mid-crash) reuses whatever the directory already
holds, down to individual cross-validation scores.  A fully-populated cache
restores without touching the datasets at all — ``AutoModel(cache_dir=path)``
alone rebuilds a working recommender.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..corpus.experience import ExperienceSet
from ..corpus.generator import CorpusConfig, generate_corpus
from ..corpus.serialization import load_corpus, save_corpus
from ..datasets.dataset import Dataset
from ..datasets.task import TaskType, resolve_task
from ..evaluation.performance import PerformanceTable
from ..execution import ResultStore
from ..learners.pipeline import pipeline_registry, registry_has_pipelines
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task
from .architecture_search import DecisionModel
from .dmd import DecisionMakingModelDesigner, DMDResult
from .persistence import (
    load_decision_model,
    read_decision_model_manifest,
    save_decision_model,
)
from .udr import CASHSolution, UserDemandResponser

__all__ = ["AutoModel"]

_MODEL_FILE = "decision_model.json"
_TABLE_FILE = "performance_table.json"
_CORPUS_FILE = "corpus.json"
_STORE_DIR = "results"


def _resolve_catalogue(
    registry: AlgorithmRegistry | None, task: TaskType, pipelines: bool
) -> AlgorithmRegistry:
    """The catalogue to fit/serve: optionally pipeline-wrapped.

    ``pipelines=True`` wraps the given registry (or the task default) into
    its pipeline twin; already-wrapped catalogues pass through unchanged.
    """
    if registry is None:
        registry = registry_for_task(task)
    if pipelines:
        registry = pipeline_registry(registry)
    return registry


class _task_aware_classmethod:
    """A classmethod that, called through an instance, inherits its ``task``.

    Lets ``AutoModel(task="regression").fit_from_datasets(...)`` behave
    naturally: the unfitted shell's task (and cache_dir, when set) become the
    defaults of the underlying classmethod, which still returns a new fitted
    AutoModel.  Called on the class, it is an ordinary classmethod.
    """

    def __init__(self, func):
        self.func = func
        functools.update_wrapper(self, func)

    def __get__(self, obj, cls):
        @functools.wraps(self.func)
        def bound(*args, **kwargs):
            if obj is not None:
                kwargs.setdefault("task", obj.task)
                if obj.cache_dir is not None:
                    kwargs.setdefault("cache_dir", obj.cache_dir)
            return self.func(cls, *args, **kwargs)

        return bound


@dataclass
class AutoModel:
    """A fitted Auto-Model instance (trained decision model + online responder).

    Either ``dmd_result`` (a full in-process DMD run) or ``model`` (a decision
    model restored from disk) supplies the ``SNA``; ``AutoModel(cache_dir=p)``
    with neither restores everything from a previously saved cache directory.
    """

    dmd_result: DMDResult | None = None
    registry: AlgorithmRegistry | None = None
    performance: PerformanceTable | None = None
    corpus: ExperienceSet | None = None
    model: DecisionModel | None = field(default=None, repr=False)
    store: ResultStore | None = field(default=None, repr=False)
    cache_dir: Path | None = None
    task: TaskType | str | None = None

    def __post_init__(self) -> None:
        explicit_task = self.task is not None
        self.task = resolve_task(self.task)
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if self.dmd_result is None and self.model is None:
            # With an explicit task, a missing saved model leaves an unfitted
            # shell — AutoModel(task=..., cache_dir=...).fit_from_datasets(...)
            # populates the (possibly empty) cache on its first run; online
            # use before fitting raises (see decision_model).  Without an
            # explicit task the historical strict behaviour is kept: a
            # cache_dir must hold a saved model, anything else is an error.
            has_saved_model = (
                self.cache_dir is not None and (self.cache_dir / _MODEL_FILE).exists()
            )
            if has_saved_model or (self.cache_dir is not None and not explicit_task):
                restored = AutoModel.load(
                    self.cache_dir,
                    registry=self.registry,
                    task=self.task if explicit_task else None,
                )
                # A bare restore inherits the task the model was saved with
                # (so a regression cache never pairs with the classifier
                # registry); an explicit task was validated by load().
                self.task = restored.task
                self.model = restored.model
                self.performance = self.performance or restored.performance
                self.corpus = self.corpus or restored.corpus
                if self.registry is None:
                    self.registry = restored.registry
            elif self.cache_dir is None and not explicit_task:
                raise ValueError(
                    "AutoModel needs a dmd_result, a model, or a cache_dir "
                    "holding a saved decision model (see fit_from_datasets)"
                )
        if self.registry is None:
            self.registry = registry_for_task(self.task)
        if self.store is None and self.cache_dir is not None:
            self.store = ResultStore(self.cache_dir / _STORE_DIR)

    # -- construction ---------------------------------------------------------------------
    @_task_aware_classmethod
    def fit(
        cls,
        corpus: ExperienceSet,
        dataset_lookup: dict[str, Dataset],
        registry: AlgorithmRegistry | None = None,
        dmd: DecisionMakingModelDesigner | None = None,
        cache_dir: str | Path | None = None,
        task: TaskType | str | None = None,
        pipelines: bool = False,
    ) -> "AutoModel":
        """Run the DMD pipeline on an existing research-paper corpus.

        ``pipelines=True`` serves pipeline-wrapped catalogue entries (see
        :mod:`repro.learners.pipeline`): the UDR then tunes preprocessing and
        estimator hyperparameters jointly.
        """
        task = resolve_task(task)
        registry = _resolve_catalogue(registry, task, pipelines)
        # The default DMD carries the task so its knowledge-base guard can
        # reject a corpus/lookup of the wrong task type.
        dmd = dmd or DecisionMakingModelDesigner(task=task.value)
        result = dmd.run(corpus, dataset_lookup)
        model = cls(
            dmd_result=result,
            registry=registry,
            corpus=corpus,
            cache_dir=cache_dir,
            task=task,
        )
        if cache_dir is not None:
            model.save(cache_dir)
        return model

    @_task_aware_classmethod
    def fit_from_datasets(
        cls,
        knowledge_datasets: list[Dataset],
        registry: AlgorithmRegistry | None = None,
        dmd: DecisionMakingModelDesigner | None = None,
        corpus_config: CorpusConfig | None = None,
        performance: PerformanceTable | None = None,
        cv: int = 3,
        max_records: int | None = 250,
        cache_dir: str | Path | None = None,
        n_workers: int = 1,
        task: TaskType | str | None = None,
        metric: str | None = None,
        pipelines: bool = False,
    ) -> "AutoModel":
        """Simulate the paper corpus from ``knowledge_datasets`` and fit on it.

        With ``cache_dir``: a directory holding a previously saved decision
        model short-circuits the whole pipeline (restore instead of refit);
        otherwise the performance measurement runs through the directory's
        :class:`~repro.execution.ResultStore` — resuming any cells a prior
        (possibly interrupted) run already paid for — and the fitted
        artefacts are saved back for the next caller.

        ``task="regression"`` (or calling through an unfitted
        ``AutoModel(task="regression")`` shell) runs the identical pipeline
        over the regressor catalogue with CV R² scores; the knowledge
        datasets must carry the matching task type.

        ``pipelines=True`` runs the whole loop — corpus measurement, DMD and
        later UDR serving — over the pipeline-wrapped catalogue, so messy
        knowledge datasets (missing values, rare categories; see
        :func:`repro.datasets.corrupt`) are scored by configurations that can
        actually handle them.  The choice is persisted in the saved model's
        manifest and restored by :meth:`load`.
        """
        task = resolve_task(task)
        registry = _resolve_catalogue(registry, task, pipelines)
        store: ResultStore | None = None
        if cache_dir is not None:
            cache_dir = Path(cache_dir)
            if (cache_dir / _MODEL_FILE).exists():
                return cls.load(cache_dir, registry=registry, task=task)
            store = ResultStore(cache_dir / _STORE_DIR)
        corpus, table = generate_corpus(
            knowledge_datasets,
            registry=registry,
            config=corpus_config,
            performance=performance,
            cv=cv,
            max_records=max_records,
            n_workers=n_workers,
            store=store,
            task=task,
            metric=metric,
        )
        lookup = {dataset.name: dataset for dataset in knowledge_datasets}
        dmd = dmd or DecisionMakingModelDesigner(task=task.value)
        result = dmd.run(corpus, lookup)
        model = cls(
            dmd_result=result,
            registry=registry,
            performance=table,
            corpus=corpus,
            store=store,
            cache_dir=cache_dir,
            task=task,
        )
        if cache_dir is not None:
            model.save(cache_dir)
        return model

    # -- persistence ------------------------------------------------------------------------
    def save(
        self, cache_dir: str | Path | None = None, metadata: dict | None = None
    ) -> Path:
        """Persist the decision model (+ table and corpus when present).

        ``metadata`` is stored in the decision-model manifest (see
        :func:`repro.core.persistence.read_decision_model_manifest`); the
        serving model registry records version/provenance information there.
        A pipeline-wrapped catalogue is recorded as ``pipelines: true`` so
        :meth:`load` (and thus the serving registry) restores the matching
        catalogue without the caller having to remember.
        """
        cache_dir = Path(cache_dir) if cache_dir is not None else self.cache_dir
        if cache_dir is None:
            raise ValueError("no cache_dir given and none set on this AutoModel")
        cache_dir.mkdir(parents=True, exist_ok=True)
        manifest_metadata = dict(metadata or {})
        if registry_has_pipelines(self.registry):
            manifest_metadata.setdefault("pipelines", True)
        save_decision_model(
            self.decision_model,
            cache_dir / _MODEL_FILE,
            task=self.task.value,
            metadata=manifest_metadata or None,
        )
        if self.performance is not None:
            self.performance.save(cache_dir / _TABLE_FILE)
        if self.corpus is not None:
            save_corpus(self.corpus, cache_dir / _CORPUS_FILE)
        return cache_dir

    @classmethod
    def load(
        cls,
        cache_dir: str | Path,
        registry: AlgorithmRegistry | None = None,
        task: TaskType | str | None = None,
    ) -> "AutoModel":
        """Restore an AutoModel saved by :meth:`save` (or ``fit*(cache_dir=)``).

        ``task=None`` adopts the task the model was saved with; an explicit
        task that disagrees with the saved one raises instead of silently
        pairing the model's labels with the wrong catalogue.  A model fitted
        over a pipeline-wrapped catalogue (manifest ``pipelines: true``)
        restores with the pipeline twin of the task's registry, so tuned
        pipeline configurations keep resolving against matching specs.
        """
        cache_dir = Path(cache_dir)
        model_path = cache_dir / _MODEL_FILE
        if not model_path.exists():
            raise FileNotFoundError(f"no saved decision model under {cache_dir}")
        manifest = read_decision_model_manifest(model_path)
        saved_task = manifest["task"]
        if task is None:
            task = resolve_task(saved_task)
        else:
            task = resolve_task(task)
            if task.value != saved_task:
                raise ValueError(
                    f"cache under {cache_dir} holds a {saved_task} decision "
                    f"model; cannot load it as task={task.value!r}"
                )
        if registry is None:
            registry = registry_for_task(task)
            if manifest["metadata"].get("pipelines"):
                registry = pipeline_registry(registry)
        decision_model = load_decision_model(model_path)
        table_path = cache_dir / _TABLE_FILE
        corpus_path = cache_dir / _CORPUS_FILE
        return cls(
            model=decision_model,
            registry=registry,
            performance=PerformanceTable.load(table_path) if table_path.exists() else None,
            corpus=load_corpus(corpus_path) if corpus_path.exists() else None,
            store=ResultStore(cache_dir / _STORE_DIR),
            cache_dir=cache_dir,
            task=task,
        )

    # -- online use ------------------------------------------------------------------------
    @property
    def decision_model(self) -> DecisionModel:
        """The trained ``SNA``, whether fitted in-process or restored from disk."""
        if self.model is not None:
            return self.model
        if self.dmd_result is None:
            raise ValueError(
                "this AutoModel is an unfitted shell; call fit_from_datasets "
                "(or fit) first, or construct with a model/cache_dir"
            )
        return self.dmd_result.model

    def responder(
        self,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        warm_start: bool = True,
        metric: str | None = None,
    ) -> UserDemandResponser:
        return UserDemandResponser(
            model=self.decision_model,
            registry=self.registry,
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
            store=self.store,
            warm_start=warm_start,
            task=self.task,
            metric=metric,
        )

    def select_algorithm(self, dataset: Dataset) -> str:
        """Only the algorithm-selection half of the UDR (no tuning)."""
        return self.responder().select_algorithm(dataset)

    def select_algorithms(self, datasets: list[Dataset]) -> list[str]:
        """Batched :meth:`select_algorithm`: one decision-model forward pass."""
        return self.responder().select_algorithms(datasets)

    def recommend(
        self,
        dataset: Dataset,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        metric: str | None = None,
    ) -> CASHSolution:
        """Full CASH answer for ``dataset``: algorithm + tuned hyperparameters.

        On a cache-backed AutoModel, repeat recommendations for the same
        dataset replay their tuning evaluations from the result store.
        """
        responder = self.responder(
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
            metric=metric,
        )
        return responder.respond(
            dataset, time_limit=time_limit, max_evaluations=max_evaluations
        )

    def recommend_many(
        self,
        datasets: list[Dataset],
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
        metric: str | None = None,
    ) -> list[CASHSolution]:
        """Batched :meth:`recommend`.

        Feature extraction and responder scoring for the whole batch are
        vectorized into one matrix and one decision-model forward pass;
        hyperparameter tuning then runs per dataset, each under its own
        budget.  One responder (and thus one result-store connection) is
        shared across the batch.
        """
        responder = self.responder(
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
            metric=metric,
        )
        return responder.respond_many(
            datasets, time_limit=time_limit, max_evaluations=max_evaluations
        )

    # -- introspection ------------------------------------------------------------------------
    @property
    def key_features(self) -> list[str]:
        if self.dmd_result is not None:
            return self.dmd_result.key_features
        return self.decision_model.key_features

    @property
    def knowledge_size(self) -> int:
        return len(self.dmd_result.knowledge_base) if self.dmd_result is not None else 0

    def describe(self) -> dict[str, Any]:
        """Human-readable summary of the fitted system."""
        out = {
            "task": self.task.value,
            "knowledge_pairs": self.knowledge_size,
            "key_features": self.key_features,
            "catalogue_size": len(self.registry),
            "pipelines": registry_has_pipelines(self.registry),
            "restored_from_cache": self.dmd_result is None,
        }
        if self.dmd_result is not None:
            out["architecture"] = self.dmd_result.architecture.config
            out["architecture_mse"] = self.dmd_result.architecture.mse
            out["algorithms_in_knowledge"] = self.dmd_result.knowledge_base.algorithm_labels
        else:
            out["architecture"] = dict(self.decision_model.architecture)
            out["algorithms_in_knowledge"] = list(self.decision_model.labels)
        return out
