"""The Auto-Model facade: DMD (offline) + UDR (online) behind one object.

Typical use::

    from repro import AutoModel, datasets

    knowledge_datasets = datasets.knowledge_suite(n_datasets=20)
    auto_model = AutoModel.fit_from_datasets(knowledge_datasets)
    solution = auto_model.recommend(my_dataset, time_limit=30.0)
    print(solution.algorithm, solution.config, solution.cv_score)

``fit_from_datasets`` simulates the research-paper corpus from measured
performance (see :mod:`repro.corpus.generator`); ``fit`` accepts a ready-made
corpus (e.g. one hand-extracted from real papers and loaded with
:func:`repro.corpus.load_corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..corpus.experience import ExperienceSet
from ..corpus.generator import CorpusConfig, generate_corpus
from ..datasets.dataset import Dataset
from ..evaluation.performance import PerformanceTable
from ..learners.registry import AlgorithmRegistry, default_registry
from .dmd import DecisionMakingModelDesigner, DMDResult
from .udr import CASHSolution, UserDemandResponser

__all__ = ["AutoModel"]


@dataclass
class AutoModel:
    """A fitted Auto-Model instance (trained decision model + online responder)."""

    dmd_result: DMDResult
    registry: AlgorithmRegistry
    performance: PerformanceTable | None = None
    corpus: ExperienceSet | None = None

    # -- construction ---------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        corpus: ExperienceSet,
        dataset_lookup: dict[str, Dataset],
        registry: AlgorithmRegistry | None = None,
        dmd: DecisionMakingModelDesigner | None = None,
    ) -> "AutoModel":
        """Run the DMD pipeline on an existing research-paper corpus."""
        registry = registry or default_registry()
        dmd = dmd or DecisionMakingModelDesigner()
        result = dmd.run(corpus, dataset_lookup)
        return cls(dmd_result=result, registry=registry, corpus=corpus)

    @classmethod
    def fit_from_datasets(
        cls,
        knowledge_datasets: list[Dataset],
        registry: AlgorithmRegistry | None = None,
        dmd: DecisionMakingModelDesigner | None = None,
        corpus_config: CorpusConfig | None = None,
        performance: PerformanceTable | None = None,
        cv: int = 3,
        max_records: int | None = 250,
    ) -> "AutoModel":
        """Simulate the paper corpus from ``knowledge_datasets`` and fit on it."""
        registry = registry or default_registry()
        corpus, table = generate_corpus(
            knowledge_datasets,
            registry=registry,
            config=corpus_config,
            performance=performance,
            cv=cv,
            max_records=max_records,
        )
        lookup = {dataset.name: dataset for dataset in knowledge_datasets}
        dmd = dmd or DecisionMakingModelDesigner()
        result = dmd.run(corpus, lookup)
        model = cls(
            dmd_result=result, registry=registry, performance=table, corpus=corpus
        )
        return model

    # -- online use ------------------------------------------------------------------------
    def responder(
        self,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
    ) -> UserDemandResponser:
        return UserDemandResponser(
            model=self.dmd_result.model,
            registry=self.registry,
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
        )

    def select_algorithm(self, dataset: Dataset) -> str:
        """Only the algorithm-selection half of the UDR (no tuning)."""
        return self.responder().select_algorithm(dataset)

    def recommend(
        self,
        dataset: Dataset,
        time_limit: float | None = 30.0,
        max_evaluations: int | None = None,
        cv: int = 5,
        tuning_max_records: int | None = 400,
        random_state: int | None = 0,
        n_workers: int = 1,
    ) -> CASHSolution:
        """Full CASH answer for ``dataset``: algorithm + tuned hyperparameters."""
        responder = self.responder(
            cv=cv,
            tuning_max_records=tuning_max_records,
            random_state=random_state,
            n_workers=n_workers,
        )
        return responder.respond(
            dataset, time_limit=time_limit, max_evaluations=max_evaluations
        )

    # -- introspection ------------------------------------------------------------------------
    @property
    def key_features(self) -> list[str]:
        return self.dmd_result.key_features

    @property
    def knowledge_size(self) -> int:
        return len(self.dmd_result.knowledge_base)

    def describe(self) -> dict[str, Any]:
        """Human-readable summary of the fitted system."""
        return {
            "knowledge_pairs": self.knowledge_size,
            "key_features": self.key_features,
            "architecture": self.dmd_result.architecture.config,
            "architecture_mse": self.dmd_result.architecture.mse,
            "algorithms_in_knowledge": self.dmd_result.knowledge_base.algorithm_labels,
            "catalogue_size": len(self.registry),
        }
