"""Core Auto-Model components: knowledge acquisition, DMD, UDR and the facade."""

from .architecture_search import (
    ArchitectureSearch,
    ArchitectureSearchResult,
    DecisionModel,
    mlp_architecture_space,
    one_hot_prime,
)
from .automodel import AutoModel
from .concepts import KnowledgeBase, KnowledgePair
from .dmd import DecisionMakingModelDesigner, DMDResult
from .feature_selection import FeatureSelectionResult, FeatureSelector
from .knowledge import InformationNetwork, KnowledgeAcquisition, acquire_knowledge
from .persistence import (
    load_decision_model,
    read_decision_model_manifest,
    save_decision_model,
)
from .udr import CASHSolution, UserDemandResponser

__all__ = [
    "ArchitectureSearch",
    "ArchitectureSearchResult",
    "DecisionModel",
    "mlp_architecture_space",
    "one_hot_prime",
    "AutoModel",
    "KnowledgeBase",
    "KnowledgePair",
    "DecisionMakingModelDesigner",
    "DMDResult",
    "FeatureSelectionResult",
    "FeatureSelector",
    "InformationNetwork",
    "KnowledgeAcquisition",
    "acquire_knowledge",
    "CASHSolution",
    "UserDemandResponser",
    "load_decision_model",
    "read_decision_model_manifest",
    "save_decision_model",
]
